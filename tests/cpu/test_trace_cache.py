"""Correctness tests for the trace-fused superinstruction cache.

Every test forces ``trace_cache=True`` on the emulator so the fused paths are
exercised even when the suite runs with ``REPRO_TRACE_CACHE=0`` (the CI slow
leg), and compares against single-step semantics where the distinction
matters.
"""

import pytest

from repro.binary import BinaryImage, load_image
from repro.cpu import Emulator, TraceRecorder
from repro.cpu.host import EXIT_ADDRESS
from repro.cpu.state import EmulationError
from repro.isa import Imm, Mem, Reg, assemble
from repro.isa.instructions import make
from repro.isa.operands import Label
from repro.isa.registers import Register


def build_program(instructions, name="f", data=b""):
    """Assemble ``instructions`` into a one-function image and load it."""
    image = BinaryImage()
    code, _ = assemble(instructions, base_address=image.text.address)
    address = image.text.append(code)
    image.add_function(name, address, len(code))
    if data:
        addr = image.data.append(data)
        image.add_object("blob", addr, len(data))
    return load_image(image)


def start_call(emulator, program, args=(), name="f"):
    """Prepare ``emulator`` to run function ``name`` from scratch."""
    emulator.halted = False
    emulator.state.write_reg(Register.RSP, program.stack_top)
    emulator.state.write_reg(Register.RBP, program.stack_top)
    for reg, value in zip([Register.RDI, Register.RSI], args):
        emulator.state.write_reg(reg, value)
    emulator.push(EXIT_ADDRESS)
    emulator.state.rip = program.image.function(name).address


#: A program whose loop body covers the specialized fusion factories (mov in
#: all shapes, alu, lea, shifts, inc/dec, push/pop, cmov/set, neg, call/ret).
_DIFFERENTIAL_BODY = [
    make("xor", Reg(Register.RAX), Reg(Register.RAX)),
    make("xor", Reg(Register.RCX), Reg(Register.RCX)),
    "loop",
    make("cmp", Reg(Register.RCX), Reg(Register.RDI)),
    make("jge", Label("done")),
    make("mov", Reg(Register.RDX), Reg(Register.RCX)),
    make("shl", Reg(Register.RDX), Imm(2)),
    make("lea", Reg(Register.R8),
         Mem(base=Register.RDX, index=Register.RCX, scale=2, disp=3)),
    make("push", Reg(Register.R8)),
    make("mov", Reg(Register.R9), Mem(base=Register.RSP)),
    make("pop", Reg(Register.R10)),
    make("add", Reg(Register.RAX), Reg(Register.R10)),
    make("sub", Reg(Register.R9), Imm(1)),
    make("neg", Reg(Register.R9)),
    make("and", Reg(Register.R9), Imm(0xFF)),
    make("or", Reg(Register.RAX), Imm(0)),
    make("xor", Reg(Register.R9), Reg(Register.RDX)),
    make("test", Reg(Register.RCX), Imm(1)),
    make("mov", Reg(Register.R11), Imm(7)),
    make("cmovne", Reg(Register.RAX), Reg(Register.RAX)),
    make("sete", Reg(Register.RBX, 1)),
    make("add", Reg(Register.RAX), Reg(Register.RBX)),
    make("mov", Mem(disp=0x600000, size=8), Reg(Register.RAX)),
    make("mov", Reg(Register.RSI), Mem(disp=0x600000, size=8)),
    make("mov", Reg(Register.RSI, 4), Reg(Register.RSI, 4)),
    make("inc", Reg(Register.RCX)),
    make("dec", Reg(Register.R11)),
    make("jmp", Label("loop")),
    "done",
    make("ret"),
]


def _run_collect(trace_cache, iterations=40):
    program = build_program(_DIFFERENTIAL_BODY, data=bytes(8))
    emulator = Emulator(program.memory, trace_cache=trace_cache)
    start_call(emulator, program, [iterations])
    emulator.run()
    return {
        "steps": emulator.steps,
        "regs": dict(emulator.state.regs),
        "flags": (emulator.state.cf, emulator.state.zf,
                  emulator.state.sf, emulator.state.of),
        "rip": emulator.state.rip,
        "blob": emulator.memory.read_int(0x600000, 8),
    }


def test_fused_execution_matches_single_step():
    """Fusion must be observationally identical to single-step dispatch."""
    assert _run_collect(trace_cache=True) == _run_collect(trace_cache=False)


def test_fused_ret_chain_matches_single_step():
    """ROP chains (ret-to-ret control flow) fuse without changing results."""
    image = BinaryImage()
    gadget1, _ = assemble([make("pop", Reg(Register.RDI)), make("ret")],
                          base_address=image.text.address)
    g1 = image.text.append(gadget1)
    gadget2, _ = assemble([make("add", Reg(Register.RDI), Imm(1)),
                           make("mov", Reg(Register.RAX), Reg(Register.RDI)),
                           make("ret")], base_address=image.text.end)
    g2 = image.text.append(gadget2)
    program = load_image(image)
    emulator = Emulator(program.memory, trace_cache=True)

    def run_chain(chain):
        emulator.halted = False
        rsp = program.stack_top - 0x100
        for offset, value in enumerate(chain):
            emulator.memory.write_int(rsp + 8 * offset, value, 8)
        emulator.state.write_reg(Register.RSP, rsp + 8)
        emulator.state.rip = chain[0]
        steps_before = emulator.steps
        emulator.run()
        return emulator.state.read_reg(Register.RAX), emulator.steps - steps_before

    # repeat the same chain until the gadget entries are hot and fused
    for _ in range(4):
        value, steps = run_chain([g1, 41, g2, EXIT_ADDRESS])
        assert (value, steps) == (42, 5)


def test_fused_ret_guard_follows_rewritten_chain():
    """A cached ret-chain trace must not replay a stale successor gadget."""
    image = BinaryImage()
    gadget1, _ = assemble([make("pop", Reg(Register.RDI)), make("ret")],
                          base_address=image.text.address)
    g1 = image.text.append(gadget1)
    gadget2, _ = assemble([make("add", Reg(Register.RDI), Imm(1)),
                           make("mov", Reg(Register.RAX), Reg(Register.RDI)),
                           make("ret")], base_address=image.text.end)
    g2 = image.text.append(gadget2)
    gadget3, _ = assemble([make("add", Reg(Register.RDI), Imm(2)),
                           make("mov", Reg(Register.RAX), Reg(Register.RDI)),
                           make("ret")], base_address=image.text.end)
    g3 = image.text.append(gadget3)
    program = load_image(image)
    emulator = Emulator(program.memory, trace_cache=True)

    def run_chain(chain):
        emulator.halted = False
        rsp = program.stack_top - 0x100
        for offset, value in enumerate(chain):
            emulator.memory.write_int(rsp + 8 * offset, value, 8)
        emulator.state.write_reg(Register.RSP, rsp + 8)
        emulator.state.rip = chain[0]
        emulator.run()
        return emulator.state.read_reg(Register.RAX)

    # get g1's trace hot with the g2 chain, then swap the successor: the
    # fused ret's guard must notice the popped target changed and fall back
    assert run_chain([g1, 41, g2, EXIT_ADDRESS]) == 42
    assert run_chain([g1, 41, g2, EXIT_ADDRESS]) == 42
    assert run_chain([g1, 10, g3, EXIT_ADDRESS]) == 12


def test_self_modifying_code_invalidates_fused_trace():
    """Patching code between runs must recompile the stale trace."""
    program = build_program([
        make("xor", Reg(Register.RAX), Reg(Register.RAX)),
        make("xor", Reg(Register.RCX), Reg(Register.RCX)),
        "loop",
        make("cmp", Reg(Register.RCX), Reg(Register.RDI)),
        make("jge", Label("done")),
        make("add", Reg(Register.RAX), Imm(2)),
        make("inc", Reg(Register.RCX)),
        make("jmp", Label("loop")),
        "done",
        make("ret"),
    ])
    address = program.image.function("f").address
    emulator = Emulator(program.memory, trace_cache=True)
    start_call(emulator, program, [5])
    emulator.run()
    assert emulator.state.read_reg(Register.RAX) == 10
    assert emulator._trace_cache, "loop body should have been fused"

    # rewrite the whole function body with a new addend (same shape)
    patched, _ = assemble([
        make("xor", Reg(Register.RAX), Reg(Register.RAX)),
        make("xor", Reg(Register.RCX), Reg(Register.RCX)),
        "loop",
        make("cmp", Reg(Register.RCX), Reg(Register.RDI)),
        make("jge", Label("done")),
        make("add", Reg(Register.RAX), Imm(3)),
        make("inc", Reg(Register.RCX)),
        make("jmp", Label("loop")),
        "done",
        make("ret"),
    ], base_address=address)
    program.memory.write(address, patched)

    start_call(emulator, program, [5])
    emulator.run()
    assert emulator.state.read_reg(Register.RAX) == 15


def test_mid_trace_self_modification_falls_back_to_single_step():
    """A store rewriting an upcoming fused instruction takes effect at once."""
    image = BinaryImage()
    base = image.text.address

    def body(patch_address):
        return [
            # patch the low immediate byte of the upcoming mov with dil
            make("mov", Mem(disp=patch_address, size=1), Reg(Register.RDI, 1)),
            make("mov", Reg(Register.RAX), Imm(0)),
            make("ret"),
        ]

    # immediate encodings are value-independent in length, so assemble once
    # with a placeholder to locate the patched instruction and its imm byte
    draft, _ = assemble(body(base), base_address=base)
    store_len = len(assemble([body(base)[0]], base_address=base)[0])
    variant_a, _ = assemble([make("mov", Reg(Register.RAX), Imm(5))],
                            base_address=base)
    variant_b, _ = assemble([make("mov", Reg(Register.RAX), Imm(9))],
                            base_address=base)
    (imm_offset,) = [i for i, (a, b) in enumerate(zip(variant_a, variant_b))
                     if a != b]
    patch_address = base + store_len + imm_offset

    code, _ = assemble(body(patch_address), base_address=base)
    assert len(code) == len(draft)
    address = image.text.append(code)
    image.add_function("f", address, len(code))
    program = load_image(image)

    emulator = Emulator(program.memory, trace_cache=True)
    for value in (5, 9, 13, 21):  # later runs execute the fused trace
        start_call(emulator, program, [value])
        emulator.run()
        assert emulator.state.read_reg(Register.RAX) == value


def test_hooks_see_every_instruction_despite_trace_cache():
    """Installing a tracing hook must disable fused skipping entirely."""
    program = build_program(_DIFFERENTIAL_BODY, data=bytes(8))
    emulator = Emulator(program.memory, trace_cache=True)

    # heat the trace cache with hook-free runs first
    for _ in range(3):
        start_call(emulator, program, [10])
        emulator.run()
    assert emulator._trace_cache

    recorder = TraceRecorder().attach(emulator)
    steps_before = emulator.steps
    start_call(emulator, program, [10])
    emulator.run()
    executed = emulator.steps - steps_before
    assert len(recorder.entries) == executed
    # the recorded control flow is the full per-instruction sequence
    hook_addresses = recorder.addresses()

    reference = Emulator(program.fork().memory, trace_cache=False)
    ref_recorder = TraceRecorder().attach(reference)
    start_call(reference, program, [10])
    reference.run()
    assert hook_addresses == ref_recorder.addresses()


def test_max_steps_exact_with_fused_traces():
    """Budget exhaustion must land on the exact step count, not a trace edge."""
    program = build_program(["spin", make("jmp", Label("spin"))])
    emulator = Emulator(program.memory, max_steps=10_000, trace_cache=True)
    start_call(emulator, program)
    with pytest.raises(EmulationError):
        emulator.run(max_steps=997)
    assert emulator.steps == 997
    with pytest.raises(EmulationError):
        emulator.run()
    assert emulator.steps == 10_000


def test_fused_push_rsp_stores_pre_decrement_value():
    """``push rsp`` pushes the old stack pointer, fused or not."""
    program = build_program([
        make("xor", Reg(Register.RAX), Reg(Register.RAX)),
        make("push", Reg(Register.RSP)),
        make("pop", Reg(Register.RCX)),
        make("sub", Reg(Register.RCX), Reg(Register.RSP)),
        make("add", Reg(Register.RAX), Reg(Register.RCX)),
        make("ret"),
    ])
    emulator = Emulator(program.memory, trace_cache=True)
    for _ in range(3):  # later runs hit the fused trace
        start_call(emulator, program)
        emulator.run()
        assert emulator.state.read_reg(Register.RAX) == 0


def test_trace_cache_toggle_disables_fusion():
    program = build_program(_DIFFERENTIAL_BODY, data=bytes(8))
    emulator = Emulator(program.memory, trace_cache=False)
    for _ in range(3):
        start_call(emulator, program, [10])
        emulator.run()
    assert not emulator._trace_cache


def test_fused_fault_reports_single_step_rip_and_steps():
    """A mid-trace memory fault must leave rip/steps as single-step would."""
    body = [
        make("xor", Reg(Register.RAX), Reg(Register.RAX)),
        make("add", Reg(Register.RAX), Imm(1)),
        make("mov", Reg(Register.RDX), Mem(base=Register.RSI)),  # faults
        make("ret"),
    ]

    def run(trace_cache):
        program = build_program(body)
        emulator = Emulator(program.memory, trace_cache=trace_cache)
        outcomes = []
        for _ in range(3):
            start_call(emulator, program, [0, 0x123456789])
            with pytest.raises(EmulationError):
                emulator.run()
            outcomes.append((emulator.steps, emulator.state.rip))
        return outcomes

    assert run(trace_cache=True) == run(trace_cache=False)
