"""Behavioural tests of the concrete emulator, including ROP-style execution."""

import pytest

from repro.binary import BinaryImage, load_image
from repro.cpu import Emulator, call_function
from repro.cpu.host import EXIT_ADDRESS, host_function_address
from repro.cpu.state import EmulationError
from repro.isa import Imm, Mem, Reg, assemble
from repro.isa.instructions import make
from repro.isa.registers import Register


def build_program(instructions, name="f", data=b""):
    """Assemble ``instructions`` into a one-function image and load it."""
    image = BinaryImage()
    code, _ = assemble(instructions, base_address=image.text.address)
    address = image.text.append(code)
    image.add_function(name, address, len(code))
    if data:
        addr = image.data.append(data)
        image.add_object("blob", addr, len(data))
    return load_image(image)


def test_mov_add_ret():
    program = build_program([
        make("mov", Reg(Register.RAX), Reg(Register.RDI)),
        make("add", Reg(Register.RAX), Reg(Register.RSI)),
        make("ret"),
    ])
    result, _ = call_function(program, "f", [20, 22])
    assert result == 42


def test_sub_and_flags_conditional():
    # return 1 if rdi == rsi else 2
    program = build_program([
        make("cmp", Reg(Register.RDI), Reg(Register.RSI)),
        make("mov", Reg(Register.RAX), Imm(2)),
        make("mov", Reg(Register.RCX), Imm(1)),
        make("cmove", Reg(Register.RAX), Reg(Register.RCX)),
        make("ret"),
    ])
    assert call_function(program, "f", [5, 5])[0] == 1
    assert call_function(program, "f", [5, 6])[0] == 2


def test_signed_comparison_branches():
    # return 1 if (signed) rdi < rsi else 0, via a branch
    from repro.isa.operands import Label

    program = build_program([
        make("cmp", Reg(Register.RDI), Reg(Register.RSI)),
        make("jl", Label("less")),
        make("mov", Reg(Register.RAX), Imm(0)),
        make("ret"),
        "less",
        make("mov", Reg(Register.RAX), Imm(1)),
        make("ret"),
    ])
    assert call_function(program, "f", [(-5) & ((1 << 64) - 1), 3])[0] == 1
    assert call_function(program, "f", [7, 3])[0] == 0


def test_loop_with_counter():
    from repro.isa.operands import Label

    # sum 0..rdi-1
    program = build_program([
        make("xor", Reg(Register.RAX), Reg(Register.RAX)),
        make("xor", Reg(Register.RCX), Reg(Register.RCX)),
        "loop",
        make("cmp", Reg(Register.RCX), Reg(Register.RDI)),
        make("jge", Label("done")),
        make("add", Reg(Register.RAX), Reg(Register.RCX)),
        make("inc", Reg(Register.RCX)),
        make("jmp", Label("loop")),
        "done",
        make("ret"),
    ])
    assert call_function(program, "f", [10])[0] == 45


def test_memory_load_store_via_stack():
    program = build_program([
        make("push", Reg(Register.RDI)),
        make("mov", Reg(Register.RAX), Mem(base=Register.RSP)),
        make("add", Reg(Register.RSP), Imm(8)),
        make("add", Reg(Register.RAX), Imm(1)),
        make("ret"),
    ])
    assert call_function(program, "f", [41])[0] == 42


def test_data_section_access():
    program = build_program(
        [
            make("mov", Reg(Register.RAX), Mem(disp=0x600000, size=8)),
            make("ret"),
        ],
        data=(1234).to_bytes(8, "little"),
    )
    assert call_function(program, "f")[0] == 1234


def test_call_and_return_between_functions():
    from repro.isa.operands import Label

    image = BinaryImage()
    callee, _ = assemble([
        make("mov", Reg(Register.RAX), Reg(Register.RDI)),
        make("imul", Reg(Register.RAX), Reg(Register.RAX)),
        make("ret"),
    ], base_address=image.text.address)
    callee_addr = image.text.append(callee)
    image.add_function("square", callee_addr, len(callee))
    caller, _ = assemble([
        make("call", Imm(callee_addr)),
        make("add", Reg(Register.RAX), Imm(1)),
        make("ret"),
    ], base_address=image.text.end)
    caller_addr = image.text.append(caller)
    image.add_function("f", caller_addr, len(caller))
    program = load_image(image)
    assert call_function(program, "f", [6])[0] == 37


def test_host_malloc_and_memory_roundtrip():
    program = build_program([
        make("mov", Reg(Register.RDI), Imm(64)),
        make("call", Imm(host_function_address("malloc"))),
        make("mov", Mem(base=Register.RAX), Imm(99)),
        make("mov", Reg(Register.RAX), Mem(base=Register.RAX)),
        make("ret"),
    ])
    assert call_function(program, "f")[0] == 99


def test_host_probe_records_coverage():
    program = build_program([
        make("mov", Reg(Register.RDI), Imm(7)),
        make("call", Imm(host_function_address("__probe"))),
        make("mov", Reg(Register.RAX), Imm(0)),
        make("ret"),
    ])
    _, emulator = call_function(program, "f")
    assert emulator.host.probes == [7]


def test_neg_sets_carry_flag_like_x86():
    program = build_program([
        make("neg", Reg(Register.RDI)),
        make("mov", Reg(Register.RAX), Imm(0)),
        make("adc", Reg(Register.RAX), Reg(Register.RAX)),
        make("ret"),
    ])
    # CF = 1 when the operand was nonzero, 0 otherwise (Figure 1 idiom)
    assert call_function(program, "f", [5])[0] == 1
    assert call_function(program, "f", [0])[0] == 0


def test_rop_style_chain_executes_from_stack():
    """A hand-built mini chain: two pop/ret gadgets then a ret to EXIT."""
    image = BinaryImage()
    gadget1, _ = assemble([make("pop", Reg(Register.RDI)), make("ret")],
                          base_address=image.text.address)
    g1 = image.text.append(gadget1)
    gadget2, _ = assemble([make("add", Reg(Register.RDI), Imm(1)),
                           make("mov", Reg(Register.RAX), Reg(Register.RDI)),
                           make("ret")], base_address=image.text.end)
    g2 = image.text.append(gadget2)
    program = load_image(image)
    emulator = Emulator(program.memory)
    # build the chain on the stack: [g1][imm 41][g2][EXIT]
    rsp = program.stack_top - 0x100
    for offset, value in enumerate([g1, 41, g2, EXIT_ADDRESS]):
        program.memory.write_int(rsp + 8 * offset, value, 8)
    emulator.state.write_reg(Register.RSP, rsp)
    emulator.state.rip = emulator.pop()
    emulator.run()
    assert emulator.state.read_reg(Register.RAX) == 42


def test_unmapped_fetch_raises():
    program = build_program([make("jmp", Imm(0x123456789)), make("ret")])
    with pytest.raises(EmulationError):
        call_function(program, "f")


def test_division_and_remainder():
    program = build_program([
        make("mov", Reg(Register.RAX), Reg(Register.RDI)),
        make("cqo"),
        make("idiv", Reg(Register.RSI)),
        make("ret"),
    ])
    assert call_function(program, "f", [42, 5])[0] == 8


def test_step_budget_enforced():
    from repro.isa.operands import Label

    program = build_program(["spin", make("jmp", Label("spin"))])
    with pytest.raises(EmulationError):
        call_function(program, "f", max_steps=100)


def test_shift_instructions():
    program = build_program([
        make("mov", Reg(Register.RAX), Reg(Register.RDI)),
        make("shl", Reg(Register.RAX), Imm(3)),
        make("shr", Reg(Register.RAX), Imm(1)),
        make("ret"),
    ])
    assert call_function(program, "f", [5])[0] == 20


def test_lea_computes_effective_address():
    program = build_program([
        make("lea", Reg(Register.RAX),
             Mem(base=Register.RDI, index=Register.RSI, scale=8, disp=4)),
        make("ret"),
    ])
    assert call_function(program, "f", [100, 3])[0] == 100 + 24 + 4


def test_shift_count_masked_by_operand_width():
    # x86 masks shift counts by the operand width: 5 bits for 32-bit and
    # narrower operands, 6 bits for 64-bit ones.  A count of 33 therefore
    # shifts a 32-bit operand by 1 but a 64-bit operand by 33.
    program = build_program([
        make("mov", Reg(Register.RAX), Reg(Register.RDI)),
        make("shl", Reg(Register.RAX, 4), Imm(33)),
        make("ret"),
    ])
    assert call_function(program, "f", [3])[0] == 6

    program = build_program([
        make("mov", Reg(Register.RAX), Reg(Register.RDI)),
        make("shl", Reg(Register.RAX), Imm(33)),
        make("ret"),
    ])
    assert call_function(program, "f", [3])[0] == 3 << 33

    # same masking applies to right shifts
    program = build_program([
        make("mov", Reg(Register.RAX), Reg(Register.RDI)),
        make("shr", Reg(Register.RAX, 4), Imm(33)),
        make("ret"),
    ])
    assert call_function(program, "f", [8])[0] == 4


def _start_call(emulator, program, address, args=()):
    """Prepare ``emulator`` to run the function at ``address`` from scratch."""
    emulator.halted = False
    emulator.state.write_reg(Register.RSP, program.stack_top)
    emulator.state.write_reg(Register.RBP, program.stack_top)
    for reg, value in zip([Register.RDI, Register.RSI], args):
        emulator.state.write_reg(reg, value)
    emulator.push(EXIT_ADDRESS)
    emulator.state.rip = address


def test_self_modifying_code_invalidates_decode_cache():
    """Stores over already-executed .text bytes must re-decode correctly."""
    program = build_program([
        make("mov", Reg(Register.RAX), Imm(1)),
        make("ret"),
    ])
    address = program.image.function("f").address
    emulator = Emulator(program.memory)
    _start_call(emulator, program, address)
    emulator.run()
    assert emulator.state.read_reg(Register.RAX) == 1

    # overwrite the executed code in place (same shape, new immediate), the
    # way ROP-materialized or self-modifying code would
    patched, _ = assemble([
        make("mov", Reg(Register.RAX), Imm(2)),
        make("ret"),
    ], base_address=address)
    program.memory.write(address, patched)

    _start_call(emulator, program, address)
    emulator.run()
    assert emulator.state.read_reg(Register.RAX) == 2


def test_program_fork_isolates_runs():
    """Runs against COW forks never leak state into the pristine program."""
    # f stores rdi into the data blob, then returns the stored value
    program = build_program(
        [
            make("mov", Mem(disp=0x600000, size=8), Reg(Register.RDI)),
            make("mov", Reg(Register.RAX), Mem(disp=0x600000, size=8)),
            make("ret"),
        ],
        data=(7).to_bytes(8, "little"),
    )
    fork_a = program.fork()
    fork_b = program.fork()
    assert call_function(fork_a, "f", [111])[0] == 111
    assert call_function(fork_b, "f", [222])[0] == 222
    # neither run polluted the pristine image or the sibling fork
    assert program.memory.read_int(0x600000, 8) == 7
    assert fork_a.memory.read_int(0x600000, 8) == 111
    assert fork_b.memory.read_int(0x600000, 8) == 222


def test_snapshot_restore_rewinds_full_context():
    """snapshot()/restore() must revert registers, flags, memory and host."""
    program = build_program(
        [
            make("mov", Mem(disp=0x600000, size=8), Reg(Register.RDI)),
            make("mov", Reg(Register.RDI), Imm(16)),
            make("call", Imm(host_function_address("malloc"))),
            make("cmp", Reg(Register.RAX), Imm(0)),
            make("ret"),
        ],
        data=(7).to_bytes(8, "little"),
    )
    address = program.image.function("f").address
    emulator = Emulator(program.memory)
    _start_call(emulator, program, address, args=[41])
    snap = emulator.snapshot()

    emulator.run()
    first_pointer = emulator.state.read_reg(Register.RAX)
    assert emulator.memory.read_int(0x600000, 8) == 41
    assert emulator.host.allocations
    assert emulator.steps > 0 and emulator.halted
    assert emulator.state.zf == 0  # cmp rax, 0 on a nonzero pointer

    # a snapshot can be restored any number of times; every restore rewinds
    # the allocator, so malloc hands out the same block again
    for argument in (5, 6):
        emulator.restore(snap)
        assert emulator.steps == 0 and not emulator.halted
        assert emulator.state.rip == address
        assert emulator.state.read_reg(Register.RDI) == 41
        assert emulator.state.zf == 0 and emulator.state.cf == 0
        assert emulator.memory.read_int(0x600000, 8) == 7
        assert not emulator.host.allocations
        emulator.state.write_reg(Register.RDI, argument)
        emulator.run()
        assert emulator.state.read_reg(Register.RAX) == first_pointer
        assert emulator.memory.read_int(0x600000, 8) == argument

    # runs after a restore never leak back into the snapshot itself
    assert snap.memory.read_int(0x600000, 8) == 7
    assert not snap.host.allocations
    assert snap.state.read_reg(Register.RDI) == 41


def test_snapshot_is_isolated_from_later_host_output():
    program = build_program([
        make("mov", Reg(Register.RDI), Imm(65)),
        make("call", Imm(host_function_address("putchar"))),
        make("mov", Reg(Register.RAX), Imm(0)),
        make("ret"),
    ])
    address = program.image.function("f").address
    emulator = Emulator(program.memory)
    _start_call(emulator, program, address)
    snap = emulator.snapshot()
    emulator.run()
    assert bytes(emulator.host.output) == b"A"
    assert bytes(snap.host.output) == b""
    emulator.restore(snap)
    assert bytes(emulator.host.output) == b""
    emulator.run()
    assert bytes(emulator.host.output) == b"A"


def test_run_max_steps_is_a_per_call_budget():
    from repro.isa.operands import Label

    program = build_program(["spin", make("jmp", Label("spin"))])
    address = program.image.function("f").address
    emulator = Emulator(program.memory, max_steps=1000)
    _start_call(emulator, program, address)
    with pytest.raises(EmulationError):
        emulator.run(max_steps=10)
    # the per-call budget must not clobber the emulator-wide cap
    assert emulator.max_steps == 1000
    assert emulator.steps <= 10
    # a second call gets a fresh per-call budget and can keep executing
    steps_before = emulator.steps
    with pytest.raises(EmulationError):
        emulator.run(max_steps=10)
    assert emulator.steps > steps_before
    # ... but the emulator-wide cap still binds overall
    with pytest.raises(EmulationError):
        emulator.run()
    assert emulator.steps == 1000
