"""Tests for the region-based memory: lookup fast paths, generations, COW."""

import pytest

from repro.memory import Memory, MemoryError_


def build_memory():
    memory = Memory()
    memory.map("code", 0x1000, 0x100, bytes(range(16)) * 16, writable=True)
    memory.map("data", 0x4000, 0x100)
    memory.map("stack", 0x8000, 0x1000)
    return memory


def test_region_lookup_and_bounds():
    memory = build_memory()
    assert memory.region_at(0x1000).name == "code"
    assert memory.region_at(0x10FF).name == "code"
    assert memory.region_at(0x1100) is None
    assert memory.region_at(0x0FFF) is None
    assert memory.region_at(0x8FFF).name == "stack"
    # repeated hits (the cached-region path) keep resolving correctly
    for _ in range(3):
        assert memory.region_at(0x4010).name == "data"
        assert memory.region_at(0x1001).name == "code"


def test_read_write_int_roundtrip_and_faults():
    memory = build_memory()
    memory.write_int(0x4000, 0xDEADBEEF, 4)
    assert memory.read_int(0x4000, 4) == 0xDEADBEEF
    assert memory.read_int(0x4000, 8) == 0xDEADBEEF
    memory.write_int(0x4008, -1, 8)
    assert memory.read_int(0x4008, 8) == (1 << 64) - 1
    assert memory.read_int(0x4008, 8, signed=True) == -1
    with pytest.raises(MemoryError_):
        memory.read_int(0x40FC, 8)  # straddles the region end
    with pytest.raises(MemoryError_):
        memory.write_int(0x2000, 1, 8)  # unmapped


def test_write_to_read_only_region_faults():
    memory = Memory()
    memory.map("ro", 0x1000, 0x10, b"abcd", writable=False)
    assert memory.read(0x1000, 4) == b"abcd"
    with pytest.raises(MemoryError_):
        memory.write(0x1000, b"x")
    with pytest.raises(MemoryError_):
        memory.write_int(0x1000, 1, 1)


def test_overlapping_map_rejected():
    memory = build_memory()
    with pytest.raises(MemoryError_):
        memory.map("overlap", 0x10F0, 0x100)


def test_generation_bumps_on_store():
    memory = build_memory()
    region = memory.region_at(0x1000)
    before = region.generation
    memory.write_int(0x1008, 0x42, 8)
    assert region.generation == before + 1
    memory.write(0x1010, b"\x01\x02")
    assert region.generation == before + 2
    # reads never bump the generation
    memory.read_int(0x1008, 8)
    assert region.generation == before + 2


def test_read_cstring():
    memory = Memory()
    memory.map("data", 0x1000, 0x100, b"hello\0world")
    assert memory.read_cstring(0x1000) == b"hello"
    assert memory.read_cstring(0x1006) == b"world"
    assert memory.read_cstring(0x1000, limit=3) == b"hel"
    with pytest.raises(MemoryError_):
        # unterminated string running off the region end
        memory.map("tight", 0x2000, 4, b"abcd")
        memory.read_cstring(0x2000)


def test_snapshot_fork_isolation():
    """Mutations in a fork never leak into the parent or sibling forks."""
    parent = build_memory()
    parent.write_int(0x4000, 0x1111, 8)
    fork_a = parent.snapshot()
    fork_b = parent.snapshot()

    fork_a.write_int(0x4000, 0xAAAA, 8)
    assert fork_a.read_int(0x4000, 8) == 0xAAAA
    assert parent.read_int(0x4000, 8) == 0x1111
    assert fork_b.read_int(0x4000, 8) == 0x1111

    fork_b.write_int(0x4000, 0xBBBB, 8)
    assert fork_b.read_int(0x4000, 8) == 0xBBBB
    assert fork_a.read_int(0x4000, 8) == 0xAAAA
    assert parent.read_int(0x4000, 8) == 0x1111

    # parent writes after forking stay invisible to both forks
    parent.write_int(0x4008, 0x2222, 8)
    assert fork_a.read_int(0x4008, 8) == 0
    assert fork_b.read_int(0x4008, 8) == 0


def test_snapshot_untouched_regions_stay_shared():
    parent = build_memory()
    fork = parent.snapshot()
    fork.write_int(0x8000, 1, 8)  # detaches only the stack region
    parent_regions = {r.name: r for r in parent.regions}
    fork_regions = {r.name: r for r in fork.regions}
    assert fork_regions["stack"].data is not parent_regions["stack"].data
    assert fork_regions["code"].data is parent_regions["code"].data
    assert fork_regions["data"].data is parent_regions["data"].data


def test_snapshot_of_snapshot():
    parent = build_memory()
    child = parent.snapshot()
    child.write_int(0x4000, 7, 8)
    grandchild = child.snapshot()
    grandchild.write_int(0x4000, 8, 8)
    assert parent.read_int(0x4000, 8) == 0
    assert child.read_int(0x4000, 8) == 7
    assert grandchild.read_int(0x4000, 8) == 8


def test_snapshot_preserves_generation_semantics():
    """Decode caches keyed on generations stay sound across forks."""
    parent = build_memory()
    parent.write_int(0x1000, 0x90, 1)
    code = parent.region_at(0x1000)
    generation = code.generation
    fork = parent.snapshot()
    # a fork write bumps only the fork's region generation
    fork.write_int(0x1000, 0xCC, 1)
    assert fork.region_at(0x1000).generation == generation + 1
    assert code.generation == generation
    # a parent write after forking bumps the parent's region generation
    parent.write_int(0x1001, 0xCC, 1)
    assert code.generation == generation + 1
    assert fork.read_int(0x1001, 1) == 0x01  # pre-fork byte, unchanged
