"""Tests for the two-pass assembler and the disassembly helpers."""

import pytest

from repro.isa import Imm, Label, Reg, assemble, disassemble_range, linear_sweep
from repro.isa.assembler import Assembler
from repro.isa.disassembler import iter_all_offsets
from repro.isa.instructions import make
from repro.isa.registers import Register


def test_forward_label_resolution():
    code, labels = assemble(
        [
            make("jmp", Label("end")),
            make("mov", Reg(Register.RAX), Imm(1)),
            "end",
            make("ret"),
        ],
        base_address=0x1000,
    )
    listing = disassemble_range(code)
    # the jmp target must be the absolute address of the ret
    assert listing[0][1].operands[0].value == labels["end"]
    assert listing[-1][1].name == "ret"


def test_backward_label_resolution():
    code, labels = assemble(
        [
            "loop",
            make("dec", Reg(Register.RCX)),
            make("jne", Label("loop")),
            make("ret"),
        ],
        base_address=0x400000,
    )
    assert labels["loop"] == 0x400000
    listing = disassemble_range(code)
    assert listing[1][1].operands[0].value == 0x400000


def test_undefined_label_raises():
    with pytest.raises(KeyError):
        assemble([make("jmp", Label("nowhere"))])


def test_label_addresses_account_for_base():
    _, labels_a = assemble(["start", make("ret")], base_address=0)
    _, labels_b = assemble(["start", make("ret")], base_address=0x5000)
    assert labels_b["start"] - labels_a["start"] == 0x5000


def test_assembler_items_are_visible():
    asm = Assembler()
    asm.label("entry")
    asm.emit(make("ret"))
    assert asm.items[0].is_label
    assert not asm.items[1].is_label


def test_disassemble_range_matches_input():
    instructions = [
        make("mov", Reg(Register.RAX), Imm(7)),
        make("add", Reg(Register.RAX), Reg(Register.RDI)),
        make("ret"),
    ]
    code, _ = assemble(instructions)
    listing = [ins for _, ins in disassemble_range(code)]
    assert listing == instructions


def test_linear_sweep_skips_garbage():
    code, _ = assemble([make("mov", Reg(Register.RAX), Imm(7)), make("ret")])
    blob = b"\x00\x01\x02" + code
    swept = linear_sweep(blob)
    names = [ins.name for ins in swept.values()]
    assert "mov" in names and "ret" in names


def test_iter_all_offsets_superset_contains_aligned_decodes():
    code, _ = assemble([make("mov", Reg(Register.RAX), Imm(7)), make("ret")])
    offsets = {offset for offset, _, _ in iter_all_offsets(code)}
    assert 0 in offsets
