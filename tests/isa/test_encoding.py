"""Round-trip and robustness tests for the instruction encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    DecodeError,
    Imm,
    Instruction,
    Mem,
    Reg,
    decode_instruction,
    encode_instruction,
)
from repro.isa.encoding import RET_OPCODE, encoded_length
from repro.isa.instructions import CONDITION_CODES, make
from repro.isa.registers import Register


def roundtrip(instruction):
    blob = encode_instruction(instruction)
    decoded, length = decode_instruction(blob)
    assert length == len(blob)
    return decoded


def test_ret_is_compact_and_uses_c3():
    instruction = make("ret")
    blob = encode_instruction(instruction)
    assert blob[0] == RET_OPCODE == 0xC3
    assert roundtrip(instruction) == instruction


def test_mov_reg_reg_roundtrip():
    instruction = make("mov", Reg(Register.RAX), Reg(Register.RDI))
    assert roundtrip(instruction) == instruction


def test_mov_reg_imm_roundtrip():
    instruction = make("mov", Reg(Register.RCX), Imm(0x1122334455667788))
    assert roundtrip(instruction) == instruction


def test_mem_operand_roundtrip():
    mem = Mem(base=Register.RBP, index=Register.RCX, scale=8, disp=-0x18, size=8)
    instruction = make("mov", Reg(Register.RAX), mem)
    assert roundtrip(instruction) == instruction


def test_mem_operand_without_base_roundtrip():
    mem = Mem(disp=0x600010, size=1)
    instruction = make("mov", Reg(Register.RAX, 1), mem)
    assert roundtrip(instruction) == instruction


def test_conditional_instructions_roundtrip():
    for cc in CONDITION_CODES:
        assert roundtrip(make(f"j{cc}", Imm(0x401000))).condition == cc
        assert roundtrip(make(f"cmov{cc}", Reg(Register.RAX), Reg(Register.RBX))).condition == cc
        assert roundtrip(make(f"set{cc}", Reg(Register.RAX, 1))).condition == cc


def test_negative_displacement_roundtrip():
    mem = Mem(base=Register.RSP, disp=-8)
    assert roundtrip(make("mov", Reg(Register.RAX), mem)).operands[1].disp == -8


def test_decode_rejects_unknown_opcode():
    with pytest.raises(DecodeError):
        decode_instruction(bytes([0x00, 0x00]))


def test_decode_rejects_truncated_instruction():
    blob = encode_instruction(make("mov", Reg(Register.RAX), Imm(5)))
    with pytest.raises(DecodeError):
        decode_instruction(blob[:-3])


def test_decode_rejects_bad_operand_count():
    with pytest.raises(DecodeError):
        decode_instruction(bytes([0x10, 0x07]))


def test_encoded_length_matches_encoding():
    instruction = make("add", Reg(Register.RSP), Imm(0x18))
    assert encoded_length(instruction) == len(encode_instruction(instruction))


def test_labels_cannot_be_encoded():
    from repro.isa.operands import Label

    with pytest.raises(ValueError):
        encode_instruction(make("jmp", Label("somewhere")))


@given(
    reg=st.sampled_from(list(Register)),
    value=st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_mov_imm_roundtrip_property(reg, value):
    instruction = make("mov", Reg(reg), Imm(value))
    assert roundtrip(instruction) == instruction


@given(
    base=st.sampled_from(list(Register)),
    index=st.sampled_from(list(Register)),
    scale=st.sampled_from([1, 2, 4, 8]),
    disp=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    size=st.sampled_from([1, 2, 4, 8]),
)
def test_mem_roundtrip_property(base, index, scale, disp, size):
    mem = Mem(base=base, index=index, scale=scale, disp=disp, size=size)
    instruction = make("mov", Reg(Register.RAX, size), mem)
    assert roundtrip(instruction) == instruction


@given(data=st.binary(min_size=0, max_size=64))
def test_decoder_never_crashes_on_garbage(data):
    try:
        instruction, length = decode_instruction(data)
    except DecodeError:
        return
    assert 0 < length <= len(data)
    assert isinstance(instruction, Instruction)
