"""Property test: any stack of obfuscation layers preserves behaviour.

Layers compose in the pipeline order the paper's tooling supports —
control-flow flattening, then nested virtualization (source-to-source, as
Tigress does), then the ROP rewriter with any protection profile on top
(§IV-C notes ROP applies to already-obfuscated code).  Whatever stack is
drawn, the obfuscated function must compute what the native one computes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binary import load_image
from repro.compiler import compile_program
from repro.core import PROTECTION_PROFILES, RopConfig, rop_obfuscate
from repro.cpu import call_function
from repro.lang import (
    Assign,
    BinOp,
    Const,
    Function,
    If,
    Program,
    Return,
    Var,
    While,
)
from repro.obfuscation import flatten_function, virtualize_program

MAX_STEPS = 120_000_000


def _workload() -> Program:
    # a small hash-and-branch function: loops, xor/mul mixing, a
    # data-dependent branch — enough surface for every layer to bite
    return Program([Function("f", ["x"], [
        Assign("h", Const(17)),
        Assign("i", Const(0)),
        While(BinOp("<", Var("i"), Const(4)), [
            Assign("h", BinOp("^", BinOp("*", Var("h"), Const(31)),
                              BinOp("+", Var("x"), Var("i")))),
            Assign("i", BinOp("+", Var("i"), Const(1))),
        ]),
        If(BinOp("==", BinOp("&", Var("h"), Const(7)), Const(3)),
           [Return(BinOp("+", Var("h"), Const(1)))],
           [Return(Var("h"))]),
    ])])


def _run_stack(flatten: bool, vm_layers: int, implicit: str,
               rop_k, profile: str, seed: int, argument: int) -> int:
    program = _workload()
    if flatten:
        program = Program([flatten_function(program.functions[0])],
                          globals=program.globals)
    if vm_layers:
        program = virtualize_program(program, ["f"], layers=vm_layers,
                                     implicit=implicit, seed=seed)
    image = compile_program(program)
    if rop_k is not None:
        config = PROTECTION_PROFILES[profile].apply(
            RopConfig.ropk(rop_k, seed=seed))
        image, report = rop_obfuscate(image, ["f"], config)
        assert report.coverage == 1.0, report.failure_categories()
    result, _ = call_function(load_image(image), "f", [argument],
                              max_steps=MAX_STEPS)
    return result


@settings(max_examples=10, deadline=None)
@given(
    flatten=st.booleans(),
    vm_layers=st.integers(min_value=0, max_value=2),
    implicit=st.sampled_from(["none", "first", "last", "all"]),
    rop_k=st.one_of(st.none(), st.sampled_from([0.0, 0.25, 1.0])),
    profile=st.sampled_from(sorted(PROTECTION_PROFILES)),
    seed=st.integers(min_value=1, max_value=4),
    argument=st.integers(min_value=0, max_value=255),
)
def test_layer_stacks_preserve_output(flatten, vm_layers, implicit,
                                      rop_k, profile, seed, argument):
    if vm_layers == 2 and rop_k is not None:
        # ROP-rewriting a doubly-nested interpreter is correct but takes
        # minutes of emulation; keep the drawn stack's shape, capped at one
        # VM layer (2VM alone and 1VM+ROP both stay covered)
        vm_layers = 1
    native, _ = call_function(load_image(compile_program(_workload())),
                              "f", [argument])
    assert _run_stack(flatten, vm_layers, implicit, rop_k, profile,
                      seed, argument) == native


def test_deepest_stack_with_every_layer():
    """Flattening + VM + ROP1.00 + both opaque layers, end to end."""
    native, _ = call_function(load_image(compile_program(_workload())),
                              "f", [42])
    assert _run_stack(True, 1, "all", 1.0, "full", seed=2,
                      argument=42) == native
