"""Functional tests for the VM obfuscation, flattening and configurations."""

import pytest

from repro.binary import load_image
from repro.compiler import compile_program
from repro.cpu import call_function
from repro.lang import (
    Assign,
    BinOp,
    Call,
    Const,
    Function,
    GlobalArray,
    If,
    Load,
    Probe,
    Program,
    Return,
    Var,
    While,
)
from repro.obfuscation import (
    apply_configuration,
    flatten_function,
    nvm,
    ropk,
    virtualize_program,
)

HASHISH = Program([Function("f", ["x"], [
    Assign("h", Const(17)),
    Assign("i", Const(0)),
    While(BinOp("<", Var("i"), Const(5)), [
        Assign("h", BinOp("^", BinOp("*", Var("h"), Const(31)), BinOp("+", Var("x"), Var("i")))),
        Assign("i", BinOp("+", Var("i"), Const(1))),
    ]),
    If(BinOp("==", BinOp("&", Var("h"), Const(0xFF)), Const(0x5A)),
       [Return(Const(1))], [Return(Const(0))]),
])])

TABLEY = Program(
    [Function("f", ["i"], [Return(Load(BinOp("+", Var("table"), Var("i")), 1))])],
    globals=[GlobalArray("table", 8, initial=bytes([1, 2, 3, 4, 5, 6, 7, 8]))],
)

CALLY = Program([
    Function("helper", ["x"], [Return(BinOp("*", Var("x"), Const(3)))]),
    Function("f", ["x"], [
        Assign("t", Call("helper", [BinOp("+", Var("x"), Const(1))])),
        Return(BinOp("-", Var("t"), Const(2))),
    ]),
])


def run_native(program, function, args, max_steps=50_000_000):
    image = compile_program(program)
    return call_function(load_image(image), function, args, max_steps=max_steps)[0]


def run_virtualized(program, function, args, layers=1, implicit="none", max_steps=50_000_000):
    transformed = virtualize_program(program, [function], layers=layers,
                                     implicit=implicit, seed=3)
    image = compile_program(transformed)
    return call_function(load_image(image), function, args, max_steps=max_steps)[0]


@pytest.mark.parametrize("argument", [0, 7, 123])
def test_single_layer_vm_preserves_behaviour(argument):
    assert run_virtualized(HASHISH, "f", [argument]) == run_native(HASHISH, "f", [argument])


def test_vm_preserves_global_table_lookups():
    for index in range(8):
        assert run_virtualized(TABLEY, "f", [index]) == index + 1


def test_vm_preserves_calls():
    assert run_virtualized(CALLY, "f", [5]) == run_native(CALLY, "f", [5]) == 16


def test_two_layer_vm_preserves_behaviour():
    assert run_virtualized(HASHISH, "f", [9], layers=2) == run_native(HASHISH, "f", [9])


def test_implicit_vpc_layers_preserve_behaviour():
    assert run_virtualized(HASHISH, "f", [5], layers=1, implicit="all") \
        == run_native(HASHISH, "f", [5])


def test_vm_code_differs_between_seeds():
    a = virtualize_program(HASHISH, ["f"], seed=1)
    b = virtualize_program(HASHISH, ["f"], seed=2)
    code_a = next(g.initial for g in a.globals if g.name.startswith("__vm_code"))
    code_b = next(g.initial for g in b.globals if g.name.startswith("__vm_code"))
    assert code_a != code_b


def test_vm_is_slower_than_native():
    image = compile_program(HASHISH)
    _, native_emulator = call_function(load_image(image), "f", [7])
    transformed = compile_program(virtualize_program(HASHISH, ["f"], seed=3))
    _, vm_emulator = call_function(load_image(transformed), "f", [7], max_steps=50_000_000)
    assert vm_emulator.steps > 3 * native_emulator.steps


def test_flattening_preserves_behaviour():
    flattened = Program([flatten_function(HASHISH.functions[0])])
    for argument in (0, 5, 99):
        assert run_native(flattened, "f", [argument]) == run_native(HASHISH, "f", [argument])


def test_probe_survives_virtualization():
    program = Program([Function("f", ["x"], [
        Probe(11),
        If(BinOp(">", Var("x"), Const(0)), [Probe(12)], [Probe(13)]),
        Return(Const(0)),
    ])])
    transformed = compile_program(virtualize_program(program, ["f"], seed=1))
    _, emulator = call_function(load_image(transformed), "f", [4], max_steps=50_000_000)
    assert emulator.host.probes == [11, 12]


def test_apply_configuration_registry():
    for config in (nvm(1), ropk(0.25)):
        image = apply_configuration(HASHISH, ["f"], config, seed=2)
        result, _ = call_function(load_image(image), "f", [7], max_steps=80_000_000)
        assert result == run_native(HASHISH, "f", [7])


def test_rop_on_top_of_vm():
    """The paper notes ROP rewriting applies to already-VM-obfuscated code (§IV-C)."""
    from repro.core import RopConfig, rop_obfuscate

    transformed = virtualize_program(HASHISH, ["f"], seed=5)
    image = compile_program(transformed)
    obfuscated, report = rop_obfuscate(image, ["f"], RopConfig.ropk(0.05))
    assert report.coverage == 1.0, report.failure_categories()
    native = run_native(HASHISH, "f", [7])
    result, _ = call_function(load_image(obfuscated), "f", [7], max_steps=120_000_000)
    assert result == native
