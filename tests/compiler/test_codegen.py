"""End-to-end tests of the mini-C compiler: compile, load, run, check results."""

import pytest

from repro.binary import load_image
from repro.compiler import CompileError, compile_function, compile_program
from repro.cpu import call_function
from repro.lang import (
    Assign,
    BinOp,
    Break,
    Call,
    Const,
    Continue,
    For,
    Function,
    GlobalArray,
    If,
    Load,
    Probe,
    Program,
    Return,
    Store,
    Switch,
    UnOp,
    Var,
    While,
)


def run(function, args=(), globals_=None, max_steps=2_000_000):
    image = compile_function(function, globals_)
    program = load_image(image)
    return call_function(program, function.name, args, max_steps=max_steps)


def signed(value):
    return value & ((1 << 64) - 1)


def test_constant_return():
    fn = Function("f", [], [Return(Const(42))])
    assert run(fn)[0] == 42


def test_parameter_passthrough():
    fn = Function("f", ["x"], [Return(Var("x"))])
    assert run(fn, [123])[0] == 123


def test_arithmetic_expression():
    fn = Function("f", ["a", "b"], [
        Return(BinOp("+", BinOp("*", Var("a"), Const(3)), BinOp("-", Var("b"), Const(1)))),
    ])
    assert run(fn, [7, 5])[0] == 25


def test_division_and_modulo():
    fn = Function("f", ["a", "b"], [
        Return(BinOp("+", BinOp("/", Var("a"), Var("b")), BinOp("%", Var("a"), Var("b")))),
    ])
    assert run(fn, [17, 5])[0] == 3 + 2


def test_unary_operators():
    fn = Function("f", ["x"], [
        Return(BinOp("+", UnOp("!", Var("x")), UnOp("~", Const(0)))),
    ])
    # !5 == 0, ~0 == -1 (as unsigned 64-bit)
    assert run(fn, [5])[0] == signed(-1)
    assert run(fn, [0])[0] == 0


def test_comparison_results_are_boolean():
    fn = Function("f", ["a", "b"], [Return(BinOp("<", Var("a"), Var("b")))])
    assert run(fn, [3, 9])[0] == 1
    assert run(fn, [9, 3])[0] == 0
    assert run(fn, [signed(-2), 3])[0] == 1  # signed comparison


def test_if_else():
    fn = Function("f", ["x"], [
        If(BinOp("==", Var("x"), Const(0)),
           [Return(Const(1))],
           [Return(Const(2))]),
    ])
    assert run(fn, [0])[0] == 1
    assert run(fn, [7])[0] == 2


def test_nested_if_without_else():
    fn = Function("f", ["x"], [
        Assign("r", Const(0)),
        If(BinOp(">", Var("x"), Const(10)), [Assign("r", Const(1))]),
        Return(Var("r")),
    ])
    assert run(fn, [11])[0] == 1
    assert run(fn, [10])[0] == 0


def test_while_loop_sum():
    fn = Function("f", ["n"], [
        Assign("i", Const(0)),
        Assign("acc", Const(0)),
        While(BinOp("<", Var("i"), Var("n")), [
            Assign("acc", BinOp("+", Var("acc"), Var("i"))),
            Assign("i", BinOp("+", Var("i"), Const(1))),
        ]),
        Return(Var("acc")),
    ])
    assert run(fn, [10])[0] == 45


def test_for_loop_desugaring():
    fn = Function("f", ["n"], [
        Assign("acc", Const(0)),
        For(Assign("i", Const(0)), BinOp("<", Var("i"), Var("n")),
            Assign("i", BinOp("+", Var("i"), Const(1))),
            [Assign("acc", BinOp("+", Var("acc"), Const(2)))]),
        Return(Var("acc")),
    ])
    assert run(fn, [6])[0] == 12


def test_break_and_continue():
    fn = Function("f", ["n"], [
        Assign("i", Const(0)),
        Assign("acc", Const(0)),
        While(Const(1), [
            Assign("i", BinOp("+", Var("i"), Const(1))),
            If(BinOp(">", Var("i"), Var("n")), [Break()]),
            If(BinOp("==", BinOp("%", Var("i"), Const(2)), Const(0)), [Continue()]),
            Assign("acc", BinOp("+", Var("acc"), Var("i"))),
        ]),
        Return(Var("acc")),
    ])
    # sum of odd numbers <= 9
    assert run(fn, [9])[0] == 25


def test_switch_statement():
    fn = Function("f", ["x"], [
        Assign("r", Const(0)),
        Switch(Var("x"),
               {1: [Assign("r", Const(10))],
                2: [Assign("r", Const(20))],
                5: [Assign("r", Const(50))]},
               default=[Assign("r", Const(99))]),
        Return(Var("r")),
    ])
    assert run(fn, [1])[0] == 10
    assert run(fn, [2])[0] == 20
    assert run(fn, [5])[0] == 50
    assert run(fn, [3])[0] == 99


def test_local_array_store_load():
    fn = Function("f", ["x"], [
        Store(Var("buf"), Var("x"), 8),
        Store(BinOp("+", Var("buf"), Const(8)), Const(100), 8),
        Return(BinOp("+", Load(Var("buf"), 8), Load(BinOp("+", Var("buf"), Const(8)), 8))),
    ], local_arrays={"buf": 16})
    assert run(fn, [42])[0] == 142


def test_byte_array_access():
    fn = Function("f", ["x"], [
        Store(Var("buf"), Var("x"), 1),
        Return(Load(Var("buf"), 1)),
    ], local_arrays={"buf": 8})
    assert run(fn, [0x1FF])[0] == 0xFF  # truncated to one byte


def test_global_array_access():
    table = GlobalArray("table", 32, initial=bytes([5, 6, 7, 8]))
    fn = Function("f", ["i"], [
        Return(Load(BinOp("+", Var("table"), Var("i")), 1)),
    ])
    assert run(fn, [2], [table])[0] == 7


def test_function_call_between_minic_functions():
    callee = Function("square", ["x"], [Return(BinOp("*", Var("x"), Var("x")))])
    caller = Function("f", ["x"], [
        Assign("s", Call("square", [Var("x")])),
        Return(BinOp("+", Var("s"), Const(1))),
    ])
    image = compile_program(Program([caller, callee]))
    program = load_image(image)
    assert call_function(program, "f", [6])[0] == 37


def test_nested_calls_are_hoisted():
    callee = Function("inc", ["x"], [Return(BinOp("+", Var("x"), Const(1)))])
    caller = Function("f", ["x"], [
        Return(BinOp("+", Call("inc", [Var("x")]), Call("inc", [Const(10)]))),
    ])
    image = compile_program(Program([caller, callee]))
    program = load_image(image)
    assert call_function(program, "f", [1])[0] == 13


def test_recursive_function():
    fact = Function("fact", ["n"], [
        If(BinOp("<=", Var("n"), Const(1)), [Return(Const(1))]),
        Return(BinOp("*", Var("n"), Call("fact", [BinOp("-", Var("n"), Const(1))]))),
    ])
    image = compile_program(Program([fact]))
    program = load_image(image)
    assert call_function(program, "fact", [10])[0] == 3628800


def test_host_call_malloc_store_load():
    fn = Function("f", ["x"], [
        Assign("p", Call("malloc", [Const(32)])),
        Store(Var("p"), Var("x"), 8),
        Return(Load(Var("p"), 8)),
    ])
    assert run(fn, [77])[0] == 77


def test_probe_statement_records_coverage():
    fn = Function("f", ["x"], [
        Probe(1),
        If(BinOp(">", Var("x"), Const(0)), [Probe(2)], [Probe(3)]),
        Probe(4),
        Return(Const(0)),
    ])
    _, emulator = run(fn, [5])
    assert emulator.host.probes == [1, 2, 4]
    _, emulator = run(fn, [0])
    assert emulator.host.probes == [1, 3, 4]


def test_shift_operators():
    fn = Function("f", ["x"], [Return(BinOp(">>", BinOp("<<", Var("x"), Const(4)), Const(2)))])
    assert run(fn, [3])[0] == 12


def test_unknown_call_raises_compile_error():
    fn = Function("f", [], [Return(Call("nonexistent", []))])
    with pytest.raises((CompileError, KeyError)):
        run(fn)


def test_duplicate_function_names_rejected():
    fn = Function("f", [], [Return(Const(0))])
    with pytest.raises(CompileError):
        compile_program(Program([fn, fn]))


def test_too_many_parameters_rejected():
    fn = Function("f", [f"p{i}" for i in range(8)], [Return(Const(0))])
    with pytest.raises(CompileError):
        compile_function(fn)


def test_function_symbol_sizes_are_consistent():
    fn = Function("f", ["x"], [Return(BinOp("+", Var("x"), Const(1)))])
    image = compile_function(fn)
    symbol = image.function("f")
    assert symbol.size > 0
    assert image.function_bytes("f")  # readable without error


def test_deep_expression_is_flattened_by_normalizer():
    expr = Var("x")
    for i in range(12):
        expr = BinOp("+", Const(i), expr)
    fn = Function("f", ["x"], [Return(expr)])
    assert run(fn, [10])[0] == 10 + sum(range(12))
