"""Tests for the attack engines: solver, DSE, SE, TDS, ROP-aware tools."""


from repro.attacks import AttackBudget, coverage_attack, secret_finding_attack
from repro.attacks.dse import DseEngine, InputSpec
from repro.attacks.ropaware import RopDissector, RopMemuExplorer
from repro.attacks.solver.expr import BinExpr, ConstExpr, SymExpr, simplify
from repro.attacks.solver.solver import ConstraintSolver, PathConstraint
from repro.attacks.tds import TaintDrivenSimplifier
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.lang import (Assign, BinOp, Const, Function, If, Probe,
                        Program, Return, Var)


def license_check_program(secret=0x5A):
    """A toy license check: accept when a simple hash of the input matches."""
    return Program([Function("check", ["x"], [
        Probe(1),
        Assign("h", BinOp("^", BinOp("*", Var("x"), Const(13)), Const(0x27))),
        If(BinOp("==", BinOp("&", Var("h"), Const(0xFF)), Const(secret)),
           [Probe(2), Return(Const(1))],
           [Probe(3), Return(Const(0))]),
    ])])


# -- solver ---------------------------------------------------------------------
def test_expression_evaluation_and_simplify():
    x = SymExpr("x", 1)
    expression = BinExpr("add", BinExpr("mul", x, ConstExpr(3)), ConstExpr(0))
    assert expression.evaluate({"x": 5}) == 15
    assert simplify(BinExpr("add", ConstExpr(2), ConstExpr(3))).value == 5


def test_solver_inverts_simple_equalities():
    solver = ConstraintSolver({"x": 8})
    x = SymExpr("x", 8)
    constraint = PathConstraint(
        BinExpr("eq", BinExpr("add", BinExpr("xor", x, ConstExpr(0xFF)), ConstExpr(5)),
                ConstExpr(0x123)), True)
    solution = solver.solve([constraint])
    assert solution is not None
    assert constraint.holds(solution)


def test_solver_enumerates_tiny_domains():
    solver = ConstraintSolver({"x": 1})
    x = SymExpr("x", 1)
    constraint = PathConstraint(
        BinExpr("eq", BinExpr("mod", BinExpr("mul", x, ConstExpr(7)), ConstExpr(251)),
                ConstExpr(13)), True)
    solution = solver.solve([constraint])
    assert solution is not None and constraint.holds(solution)


def test_solver_reports_unsat_within_budget():
    solver = ConstraintSolver({"x": 1}, max_evaluations=300)
    x = SymExpr("x", 1)
    impossible = PathConstraint(BinExpr("ugt", x, ConstExpr(0x1_0000)), True)
    assert solver.solve([impossible]) is None


# -- DSE on native code ------------------------------------------------------------
def test_dse_finds_secret_in_native_code():
    image = compile_program(license_check_program())
    outcome = secret_finding_attack(image, "check", InputSpec(argument_sizes=[1]),
                                    AttackBudget(seconds=5, max_executions=60))
    assert outcome.success
    assert outcome.witness is not None


def test_dse_reaches_full_coverage_on_native_code():
    image = compile_program(license_check_program())
    outcome = coverage_attack(image, "check", target_probes={1, 2, 3},
                              input_spec=InputSpec(argument_sizes=[1]),
                              budget=AttackBudget(seconds=5, max_executions=60))
    assert outcome.success


def test_dse_explores_multiple_paths():
    program = Program([Function("f", ["x"], [
        Assign("c", Const(0)),
        If(BinOp(">", Var("x"), Const(10)), [Assign("c", Const(1))]),
        If(BinOp("==", Var("x"), Const(42)), [Assign("c", Const(2))]),
        Return(Var("c")),
    ])])
    engine = DseEngine(compile_program(program), "f", InputSpec(argument_sizes=[1]))
    results, stats = engine.explore(time_budget=5, max_executions=40)
    assert stats.paths_seen >= 3
    assert {r.return_value for r in results} >= {0, 1, 2}


def test_dse_against_rop_is_slower_but_state_is_tracked():
    image = compile_program(license_check_program())
    obfuscated, report = rop_obfuscate(image, ["check"], RopConfig.ropk(0.25))
    assert report.coverage == 1.0
    engine = DseEngine(obfuscated, "check", InputSpec(argument_sizes=[1]))
    results, stats = engine.explore(time_budget=5, max_executions=20)
    # the ROP-encoded branches surface as pointer-concretization constraints
    assert any(r.constraints for r in results)


# -- TDS ------------------------------------------------------------------------------
def test_tds_simplifies_plain_rop_dispatch():
    image = compile_program(license_check_program())
    obfuscated, _ = rop_obfuscate(image, ["check"], RopConfig.plain())
    simplifier = TaintDrivenSimplifier(obfuscated, "check")
    report = simplifier.simplify([7])
    assert report.trace_length > 0
    assert report.simplified_length < report.trace_length
    assert report.dispatch_removed > 0


def test_tds_cannot_remove_p3_couplings():
    image = compile_program(license_check_program())
    plain, _ = rop_obfuscate(image, ["check"], RopConfig.plain())
    hardened, _ = rop_obfuscate(image, ["check"], RopConfig.ropk(1.0))
    plain_report = TaintDrivenSimplifier(plain, "check").simplify([7])
    hard_report = TaintDrivenSimplifier(hardened, "check").simplify([7])
    # P3 couples obfuscation code with tainted data: more tainted branches
    # survive simplification than in the un-strengthened chain
    assert hard_report.tainted_branches > plain_report.tainted_branches


# -- ROP-aware tools ------------------------------------------------------------------
def test_ropmemu_finds_flag_leaks_and_p2_breaks_flips():
    image = compile_program(license_check_program())
    hardened, _ = rop_obfuscate(image, ["check"], RopConfig.ropk(0.0))
    explorer = RopMemuExplorer(hardened, "check")
    report = explorer.explore([7], max_flips=8)
    assert report.flag_leak_points > 0
    # with P2 enabled, flipping the leaked flag without fixing the operands
    # must not reveal the alternate path cleanly
    assert report.new_coverage == set() or report.valid_alternate_paths < len(report.attempts)


def test_ropdissector_loses_chain_structure_with_confusion():
    image = compile_program(license_check_program())
    plain, _ = rop_obfuscate(image, ["check"], RopConfig.plain())
    confused, _ = rop_obfuscate(image, ["check"],
                                RopConfig(p3_fraction=0.0, gadget_confusion=True))
    plain_report = RopDissector(plain).dissect("check")
    confused_report = RopDissector(confused).dissect("check")
    assert plain_report.slots > 0 and confused_report.slots > 0
    # on an un-strengthened chain a fixed 8-byte stride recovers most gadget
    # slots and the branch points; unaligned updates and disguised immediates
    # destroy that view
    assert plain_report.gadget_slots > plain_report.slots * 0.3
    assert plain_report.branch_points >= 1
    assert confused_report.address_looking_fraction < plain_report.address_looking_fraction


def test_ropdissector_gadget_guessing_explodes_with_confusion():
    image = compile_program(license_check_program())
    confused, _ = rop_obfuscate(image, ["check"],
                                RopConfig(p3_fraction=0.0, gadget_confusion=True))
    report = RopDissector(confused).dissect("check", gadget_guessing=True)
    # guessing at every byte offset yields far more candidates than real slots
    assert report.guessed_gadgets > report.gadget_slots
