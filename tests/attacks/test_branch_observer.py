"""Branch-observer snapshot capture at cmov and pointer (ROP) records.

PR 3 snapshotted only plain ``jcc`` branch points; cmov and pointer-kind
records mutate shadow state inside the same tracker-hook call, so the
capture must happen *before* the mutation.  These tests assert the new
observer-driven capture engages at those record kinds and — the load-bearing
property — that backtracking exploration stays path-for-path identical to
rerun-from-entry, as well as that the attack engines produce identical
results under all three emulator execution tiers.
"""

import pytest

from repro.attacks.dse import DseEngine, InputSpec
from repro.attacks.ropaware import RopMemuExplorer
from repro.attacks.shadow import ShadowTracker
from repro.attacks.tds import TaintDrivenSimplifier
from repro.binary import BinaryImage
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.isa import Imm, Reg, assemble
from repro.isa.instructions import make
from repro.isa.operands import Label
from repro.isa.registers import Register
from repro.lang import (
    Assign,
    BinOp,
    Const,
    Function,
    If,
    Probe,
    Program,
    Return,
    Var,
)


def _explore(image, backtracking, sizes=(8,), budget=8.0, executions=80,
             seed=3):
    engine = DseEngine(image, "f", InputSpec(argument_sizes=list(sizes)),
                       seed=seed, backtracking=backtracking)
    results, stats = engine.explore(time_budget=budget,
                                    max_executions=executions)
    paths = sorted(set(
        tuple((address, constraint.expected)
              for address, constraint in zip(result.branch_addresses,
                                             result.constraints))
        for result in results))
    outcomes = sorted((tuple(sorted(result.assignment.items())),
                       result.return_value, result.probes)
                      for result in results)
    return paths, outcomes, stats


def _cmov_image():
    """A function whose first symbolic decision is a cmov select."""
    image = BinaryImage()
    body = [
        make("mov", Reg(Register.RAX), Imm(1)),
        make("mov", Reg(Register.RCX), Imm(7)),
        make("cmp", Reg(Register.RDI), Imm(5)),
        make("cmove", Reg(Register.RAX), Reg(Register.RCX)),
        make("cmp", Reg(Register.RDI), Imm(64)),
        make("jne", Label("done")),
        make("add", Reg(Register.RAX), Imm(100)),
        "done",
        make("ret"),
    ]
    code, _ = assemble(body, base_address=image.text.address)
    address = image.text.append(code)
    image.add_function("f", address, len(code))
    return image


def test_cmov_branch_points_are_captured_and_equivalent():
    image = _cmov_image()
    paths_bt, outcomes_bt, stats_bt = _explore(image, backtracking=True)
    paths_entry, outcomes_entry, _ = _explore(image, backtracking=False)
    assert paths_bt == paths_entry
    assert outcomes_bt == outcomes_entry
    assert len(paths_bt) >= 3, "cmov + jcc should fan out multiple paths"
    # the first decision of every path is the cmov select: without cmov
    # capture the pool would stay empty until the later jcc
    assert stats_bt.snapshots_taken >= 1
    assert stats_bt.branch_restores >= 1
    assert stats_bt.repair_fallbacks == 0


def _rop_image():
    """A ROP-obfuscated license check: decisions are pointer-kind records."""
    check = Program([Function("f", ["x"], [
        Probe(1),
        Assign("h", BinOp("^", BinOp("*", Var("x"), Const(13)), Const(0x27))),
        If(BinOp("==", BinOp("&", Var("h"), Const(0xFF)), Const(0x5A)),
           [Probe(2), Return(Const(1))],
           [Probe(3), Return(Const(0))]),
    ])])
    ropped, _ = rop_obfuscate(compile_program(check), ["f"], RopConfig.plain())
    return ropped


def test_pointer_branch_points_are_captured_and_equivalent():
    image = _rop_image()
    paths_bt, outcomes_bt, stats_bt = _explore(image, backtracking=True,
                                               sizes=(1,))
    paths_entry, outcomes_entry, _ = _explore(image, backtracking=False,
                                              sizes=(1,))
    assert paths_bt == paths_entry
    assert outcomes_bt == outcomes_entry
    # ROP branches never touch the flags: captures happen at pointer records
    assert stats_bt.snapshots_taken >= 1
    assert stats_bt.branch_restores >= 1


def test_observer_fires_before_shadow_mutation():
    """At observer time the record is not yet appended and the flag-repair
    recipe still describes the *pre-branch* flags (the capture invariant)."""
    image = _rop_image()
    engine = DseEngine(image, "f", InputSpec(argument_sizes=[1]), seed=1,
                       backtracking=True)
    emulator = engine._fork_emulator()
    tracker = ShadowTracker()
    from repro.attacks.solver.expr import SymExpr
    from repro.isa.registers import ARG_REGISTERS

    tracker.set_register_symbol(ARG_REGISTERS[0], SymExpr("arg0", 1))
    seen = []

    def observer(kind, address):
        # the pointer record for this instruction must not be recorded yet
        seen.append((kind, len(tracker.branches),
                     None if tracker.flag_repair is None
                     else tracker.flag_repair[0]))

    tracker.branch_observer = observer
    emulator.pre_hooks = [tracker.hook]
    emulator.run()
    assert seen, "the ROP chain should hit at least one pointer branch"
    kinds = {kind for kind, _, _ in seen}
    assert "pointer" in kinds
    first_kind, depth_at_first, _ = seen[0]
    assert depth_at_first == 0, "observer must fire before the record lands"
    # forks taken by observers must not inherit the observer itself
    assert tracker.fork().branch_observer is None


@pytest.fixture
def _tier(request, monkeypatch):
    """Force one emulator execution tier process-wide for engine runs."""
    cache, compiled = request.param
    import repro.cpu.emulator as emulator_module

    monkeypatch.setattr(emulator_module, "_TRACE_CACHE_DEFAULT", cache)
    monkeypatch.setattr(emulator_module, "_TRACE_COMPILE_DEFAULT", compiled)
    return request.param


def _attack_results(image):
    """One result bundle per engine, deterministic under a fixed seed."""
    dse_paths, dse_outcomes, _ = _explore(image, backtracking=True,
                                          sizes=(1,), budget=5.0,
                                          executions=40)
    tds = TaintDrivenSimplifier(image, "f")
    trace, steps = tds.record([7])
    memu = RopMemuExplorer(image, "f")
    report = memu.explore([7], max_flips=12)
    return {
        "dse": (dse_paths, dse_outcomes),
        "tds": ([entry.address for entry in trace], steps),
        "ropmemu": (report.flag_leak_points, report.valid_alternate_paths,
                    sorted(report.new_coverage), len(report.attempts)),
    }


_TIER_CONFIGS = [(False, False), (True, False), (True, True)]


def test_attack_results_identical_across_execution_tiers(monkeypatch):
    """DSE/TDS/ROPMEMU must be tier-blind: single-step, closure traces and
    exec-compiled traces produce byte-identical attack results."""
    import repro.cpu.emulator as emulator_module

    image = _rop_image()
    results = []
    for cache, compiled in _TIER_CONFIGS:
        monkeypatch.setattr(emulator_module, "_TRACE_CACHE_DEFAULT", cache)
        monkeypatch.setattr(emulator_module, "_TRACE_COMPILE_DEFAULT", compiled)
        results.append(_attack_results(image))
    assert results[0] == results[1] == results[2]
