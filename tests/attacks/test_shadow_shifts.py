"""Shadow-tracker exactness over the fixed x86 shift semantics.

The emulator masks shift counts by the operand width (6 bits for 64-bit
operands, 5 otherwise) and leaves flags *and* destination untouched when
the masked count is zero.  The tracker must mirror both: a concrete count
is baked into the shifted expression width-masked (the expression language
masks at a fixed 6 bits, which diverges for counts 32-63 on sub-width
operands), and a zero-count shift must not clobber the symbolic flag
source, the repair recipe, or the destination's expression.
"""

from repro.attacks.shadow import ShadowTracker
from repro.attacks.solver.expr import SymExpr
from repro.binary import BinaryImage, load_image
from repro.cpu import Emulator
from repro.cpu.host import EXIT_ADDRESS
from repro.isa import Imm, Reg, assemble
from repro.isa.instructions import make
from repro.isa.registers import Register


def _run_shadowed(body, rdi_value):
    """Run ``body`` single-step with RDI symbolic; return (tracker, emulator)."""
    image = BinaryImage()
    code, _ = assemble(body, base_address=image.text.address)
    address = image.text.append(code)
    image.add_function("f", address, len(code))
    program = load_image(image)
    emulator = Emulator(program.memory, trace_cache=False)
    tracker = ShadowTracker()
    tracker.set_register_symbol(Register.RDI, SymExpr("x"))
    emulator.pre_hooks.append(tracker.hook)
    emulator.state.write_reg(Register.RSP, program.stack_top)
    emulator.state.write_reg(Register.RDI, rdi_value)
    emulator.push(EXIT_ADDRESS)
    emulator.state.rip = address
    emulator.run()
    return tracker, emulator


def test_sub_width_shift_count_past_width_mask_stays_exact():
    """`shl edi, cl` with CL=33 shifts by 33 & 0x1F = 1; the shadow's
    expression must reproduce exactly that, not a 6-bit-masked shift."""
    body = [
        make("mov", Reg(Register.RCX), Imm(33)),
        make("shl", Reg(Register.RDI, 4), Reg(Register.RCX, 1)),
        make("ret"),
    ]
    seed = 0x1234_5678_9ABC_DEF0
    tracker, emulator = _run_shadowed(body, seed)
    assert tracker.repair_exact
    expression = tracker.register_exprs[Register.RDI]
    assert expression.evaluate({"x": seed}) == \
        emulator.state.regs[Register.RDI]


def test_zero_count_shift_leaves_shadow_flag_source_untouched():
    """A masked-zero shift after a cmp must not retarget the symbolic flag
    source (the later jcc still records a constraint over the cmp)."""
    body = [
        make("cmp", Reg(Register.RDI), Imm(5)),
        make("mov", Reg(Register.RCX), Imm(64)),       # 64 & 0x3F == 0
        make("shl", Reg(Register.RDI), Reg(Register.RCX, 1)),
        make("ret"),
    ]
    seed = 3
    tracker, emulator = _run_shadowed(body, seed)
    # flag bookkeeping still describes the cmp, exactly repairable
    assert tracker.flag_state is not None
    assert tracker.flag_state[0] == "cmp"
    assert tracker.flag_repair is not None
    assert tracker.flag_repair[0] == "sub"
    # the destination's expression survived the no-op shift
    expression = tracker.register_exprs[Register.RDI]
    assert expression.evaluate({"x": seed}) == \
        emulator.state.regs[Register.RDI]
    assert tracker.repair_exact


def test_symbolic_shift_count_clears_repair_exactness():
    """An input-dependent count (even one concretely masked nonzero) cannot
    be repaired exactly; the tracker must say so instead of guessing."""
    body = [
        make("mov", Reg(Register.RCX), Reg(Register.RDI)),
        make("shl", Reg(Register.RAX), Reg(Register.RCX, 1)),
        make("ret"),
    ]
    tracker, _ = _run_shadowed(body, 7)
    assert not tracker.repair_exact
