"""Distributed DSE snapshot frontier: path-set identity and wiring."""

import pytest

from repro.attacks.dse import DseEngine, InputSpec
from repro.attacks.frontier import FrontierExplorer, fork_available
from repro.attacks.goals import AttackBudget, dse_workers, secret_finding_attack
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.lang import Assign, BinOp, Const, Function, If, Probe, Program, Return, Var
from repro.workloads.randomfuns import RandomFunSpec, generate_random_function

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method required")


def _branchy_image():
    """A multi-path RandomFuns workload (11 feasible paths at 1 input byte)."""
    spec = RandomFunSpec(structure="for(if(bb4,bb4))", input_size=1, seed=2,
                         point_test=False)
    program, _, _ = generate_random_function(spec)
    return compile_program(program), spec.name


def _rop_license_image():
    """A ROP-obfuscated license check: pointer-kind branch records."""
    check = Program([Function("f", ["x"], [
        Probe(1),
        Assign("h", BinOp("^", BinOp("*", Var("x"), Const(13)), Const(0x27))),
        If(BinOp("==", BinOp("&", Var("h"), Const(0xFF)), Const(0x5A)),
           [Probe(2), Return(Const(1))],
           [Probe(3), Return(Const(0))]),
    ])])
    ropped, _ = rop_obfuscate(compile_program(check), ["f"], RopConfig.plain())
    return ropped, "f"


def _path_set(results):
    """Path identity via decision keys (unambiguous for pointer records)."""
    return {result.decision_keys for result in results}


@needs_fork
@pytest.mark.parametrize("workers", [2, 4])
def test_frontier_path_set_equals_serial_entry_rewind(workers):
    """The tentpole property: the distributed explorer's exhausted path set
    is identical to serial ``REPRO_DSE_BACKTRACK=0`` exploration.

    Byte-sized inputs keep the solver in its exhaustive-enumeration phase,
    which is order-independent — so the equality is exact, not statistical.
    """
    image, function = _branchy_image()
    input_spec = InputSpec(argument_sizes=[1])

    serial = DseEngine(image, function, input_spec, seed=5, backtracking=False)
    serial_results, serial_stats = serial.explore(time_budget=60.0,
                                                  max_executions=500)
    assert serial_stats.paths_seen >= 5  # the workload must stay branchy

    frontier = FrontierExplorer(image, function, input_spec, seed=5,
                                workers=workers)
    assert frontier.distributed
    frontier_results, frontier_stats = frontier.explore(time_budget=60.0,
                                                        max_executions=500)
    assert _path_set(frontier_results) == _path_set(serial_results)
    assert frontier_stats.paths_seen == serial_stats.paths_seen
    assert frontier_stats.executions == serial_stats.executions
    assert sum(frontier.executions_by_worker.values()) == \
        frontier_stats.executions


@needs_fork
def test_frontier_matches_serial_on_rop_chain():
    image, function = _rop_license_image()
    input_spec = InputSpec(argument_sizes=[1])
    serial = DseEngine(image, function, input_spec, seed=3, backtracking=False)
    serial_results, _ = serial.explore(time_budget=60.0, max_executions=100)
    frontier = FrontierExplorer(image, function, input_spec, seed=3, workers=2)
    frontier_results, _ = frontier.explore(time_budget=60.0, max_executions=100)
    assert _path_set(frontier_results) == _path_set(serial_results)
    # both must have recovered the accepting input
    assert any(r.return_value == 1 and not r.faulted for r in serial_results)
    assert any(r.return_value == 1 and not r.faulted for r in frontier_results)


@needs_fork
def test_frontier_backtracking_off_still_matches():
    image, function = _branchy_image()
    input_spec = InputSpec(argument_sizes=[1])
    serial = DseEngine(image, function, input_spec, seed=5, backtracking=False)
    serial_results, _ = serial.explore(time_budget=60.0, max_executions=500)
    frontier = FrontierExplorer(image, function, input_spec, seed=5, workers=2,
                                backtracking=False)
    frontier_results, _ = frontier.explore(time_budget=60.0, max_executions=500)
    assert _path_set(frontier_results) == _path_set(serial_results)


def test_workers_1_delegates_to_serial_engine():
    image, function = _branchy_image()
    input_spec = InputSpec(argument_sizes=[1])
    frontier = FrontierExplorer(image, function, input_spec, seed=5, workers=1)
    assert not frontier.distributed
    results, stats = frontier.explore(time_budget=60.0, max_executions=500)
    reference = DseEngine(image, function, input_spec, seed=5)
    ref_results, ref_stats = reference.explore(time_budget=60.0,
                                               max_executions=500)
    assert _path_set(results) == _path_set(ref_results)
    assert frontier.executions_by_worker == {0: stats.executions}


@needs_fork
def test_frontier_respects_max_executions():
    image, function = _branchy_image()
    frontier = FrontierExplorer(image, function, InputSpec(argument_sizes=[1]),
                                seed=5, workers=2)
    _, stats = frontier.explore(time_budget=60.0, max_executions=3)
    assert stats.executions <= 3


@needs_fork
@pytest.mark.parametrize("backtracking", [True, False])
@pytest.mark.parametrize("fault", ["1:kill", "1:exit0"])
def test_frontier_recovers_worker_death_mid_exploration(monkeypatch,
                                                        backtracking, fault):
    """A worker killed mid-exploration (SIGKILL or a *clean* premature
    exit 0) must not lose its claimed branch decision: the coordinator
    returns it to the frontier, respawns the slot, and the explored path
    set still equals the serial explorer's — in both backtracking modes."""
    image, function = _branchy_image()
    input_spec = InputSpec(argument_sizes=[1])
    serial = DseEngine(image, function, input_spec, seed=5, backtracking=False)
    serial_results, _ = serial.explore(time_budget=60.0, max_executions=500)

    monkeypatch.setenv("REPRO_FAULT_INJECT", fault)
    frontier = FrontierExplorer(image, function, input_spec, seed=5, workers=2,
                                backtracking=backtracking)
    frontier_results, frontier_stats = frontier.explore(time_budget=60.0,
                                                        max_executions=500)
    assert frontier.respawns >= 1
    assert _path_set(frontier_results) == _path_set(serial_results)
    assert frontier_stats.executions == len(serial_results)


@needs_fork
def test_frontier_hang_is_killed_by_deadline_and_path_set_preserved(
        monkeypatch):
    """A worker that hangs mid-decision (not dead — the claim cell still
    names its task) is killed once REPRO_UNIT_TIMEOUT expires, the decision
    returns to the frontier, and the explored path set still equals the
    serial explorer's.  Frontier units are milliseconds, so a short deadline
    only ever trips on the injected hang."""
    image, function = _branchy_image()
    input_spec = InputSpec(argument_sizes=[1])
    serial = DseEngine(image, function, input_spec, seed=5, backtracking=False)
    serial_results, _ = serial.explore(time_budget=60.0, max_executions=500)

    monkeypatch.setenv("REPRO_FAULT_INJECT", "1:hang")
    monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "2")
    frontier = FrontierExplorer(image, function, input_spec, seed=5, workers=2)
    frontier_results, frontier_stats = frontier.explore(time_budget=60.0,
                                                        max_executions=500)
    assert frontier.timeouts >= 1
    assert frontier.respawns >= 1
    assert _path_set(frontier_results) == _path_set(serial_results)
    assert frontier_stats.executions == len(serial_results)


@needs_fork
def test_frontier_gives_up_after_repeated_deaths_on_one_task(monkeypatch):
    """A branch decision that kills every worker that touches it must not
    respawn forever — after the retry budget the exploration aborts loudly."""
    image, function = _branchy_image()
    monkeypatch.setenv("REPRO_UNIT_RETRIES", "1")
    # every dispatched task dies: task ids 0..9 all SIGKILL their worker
    monkeypatch.setenv("REPRO_FAULT_INJECT",
                       ",".join(f"{i}:kill" for i in range(10)))
    frontier = FrontierExplorer(image, function, InputSpec(argument_sizes=[1]),
                                seed=5, workers=2)
    with pytest.raises(RuntimeError, match="died|respawn limit"):
        frontier.explore(time_budget=60.0, max_executions=500)


def test_dse_workers_knob(monkeypatch):
    monkeypatch.delenv("REPRO_DSE_WORKERS", raising=False)
    assert dse_workers() == 1
    monkeypatch.setenv("REPRO_DSE_WORKERS", "4")
    assert dse_workers() == 4
    monkeypatch.setenv("REPRO_DSE_WORKERS", "junk")
    assert dse_workers() == 1


@needs_fork
def test_secret_finding_attack_through_frontier(monkeypatch):
    """`REPRO_DSE_WORKERS>1` routes the goal drivers through the frontier;
    the stop condition runs coordinator-side, so the witness closure works."""
    monkeypatch.setenv("REPRO_DSE_WORKERS", "2")
    image, function = _rop_license_image()
    outcome = secret_finding_attack(
        image, function, InputSpec(argument_sizes=[1]),
        AttackBudget(seconds=60.0, max_executions=50), seed=3)
    assert outcome.success
    assert outcome.witness is not None
    value = outcome.witness["arg0"]
    assert ((value * 13) ^ 0x27) & 0xFF == 0x5A
