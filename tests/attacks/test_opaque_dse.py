"""DSE differential tests on the opaque-constant / instruction-hiding layers.

The +OC layer makes the chain read the P1 opaque array with symbolic
indices and *write its own gadget slots* at run time; the +IH layer makes
real lowerings execute inside predicate bodies.  These are exactly the
dataflows the shadow tracker's stable-range modelling and symbolic-RET
pinning must keep inside the exactness envelope: backtracking exploration
has to stay engaged (snapshot restores > 0) while exploring the *identical*
path set as rerun-from-entry — the invariant ``summary.json``'s per-config
``backtrack_rate`` monitors at grid scale.
"""

import pytest

from repro.compiler import compile_program
from repro.core import PROTECTION_PROFILES, RopConfig, rop_obfuscate
from repro.lang import (
    Assign,
    BinOp,
    Const,
    Function,
    If,
    Probe,
    Program,
    Return,
    Var,
)
from tests.attacks.test_branch_observer import _explore

LAYERED_PROFILES = ("opaque", "hidden", "full")


def _license_check() -> Program:
    return Program([Function("f", ["x"], [
        Probe(1),
        Assign("h", BinOp("^", BinOp("*", Var("x"), Const(13)), Const(0x27))),
        If(BinOp("==", BinOp("&", Var("h"), Const(0xFF)), Const(0x5A)),
           [Probe(2), Return(Const(1))],
           [Probe(3), Return(Const(0))]),
    ])])


def _layered_image(profile: str):
    config = PROTECTION_PROFILES[profile].apply(RopConfig.plain())
    image, report = rop_obfuscate(compile_program(_license_check()), ["f"],
                                  config)
    assert report.coverage == 1.0, report.failure_categories()
    return image


@pytest.mark.parametrize("profile", LAYERED_PROFILES)
def test_backtracking_explores_identical_paths(profile):
    image = _layered_image(profile)
    paths_bt, outcomes_bt, stats_bt = _explore(image, backtracking=True,
                                               sizes=(1,), budget=120.0)
    paths_entry, outcomes_entry, _ = _explore(image, backtracking=False,
                                              sizes=(1,), budget=120.0)
    assert paths_bt == paths_entry
    assert outcomes_bt == outcomes_entry
    # pointer records pin both arms at the same RET address, so the fan-out
    # shows up in the outcomes (distinct assignments/returns), not the
    # per-address path tuples
    assert len(outcomes_bt) >= 2, "the license check must fan out both arms"
    # the load-bearing claim: the layers do not push exploration out of the
    # exactness envelope, so backtracking stays engaged
    assert stats_bt.snapshots_taken >= 1
    assert stats_bt.branch_restores >= 1


@pytest.mark.parametrize("profile", LAYERED_PROFILES)
def test_layers_do_not_hide_the_secret_from_dse(profile):
    _, outcomes, _ = _explore(_layered_image(profile), backtracking=True,
                              sizes=(1,), budget=120.0)
    # some explored assignment reaches the accepting arm (probe 2)
    assert any(result[1] == 1 and 2 in result[2] for result in outcomes)


def test_stable_range_reads_stay_exact_on_full_profile():
    image = _layered_image("full")
    assert image.metadata.get("rop_stable_ranges"), \
        "the rewriter must publish the opaque array's stable range"
    _, _, stats = _explore(image, backtracking=True, sizes=(1,),
                           budget=120.0)
    # opaque extractions read the array with symbolic indices; with the
    # stable-range SelectExpr modelling they stay repair-exact, so engaged
    # backtracking never burns a fallback on them
    assert stats.branch_restores >= 1
    assert stats.repair_fallbacks == 0


def test_without_stable_ranges_dse_falls_back_conservatively():
    """Dropping the metadata must degrade to rerun-from-entry, not to wrong
    exploration: the differential property holds either way."""
    image = _layered_image("full")
    image.metadata.pop("rop_stable_ranges", None)
    paths_bt, outcomes_bt, _ = _explore(image, backtracking=True, sizes=(1,),
                                        budget=120.0)
    paths_entry, outcomes_entry, _ = _explore(image, backtracking=False,
                                              sizes=(1,), budget=120.0)
    assert paths_bt == paths_entry
    assert outcomes_bt == outcomes_entry
