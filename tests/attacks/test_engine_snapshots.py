"""Snapshot-engine tests: backtracking DSE differentials, the snapshot pool,
entry-snapshot retargeting, and TDS/ROPMEMU snapshot-vs-legacy parity."""

import pytest

from repro.attacks.dse import DseEngine, InputSpec
from repro.attacks.engine import SnapshotPool
from repro.attacks.ropaware import RopMemuExplorer
from repro.attacks.tds import TaintDrivenSimplifier
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.lang import (
    Assign,
    BinOp,
    Call,
    Const,
    Function,
    If,
    Load,
    Probe,
    Program,
    Return,
    Var,
)


def branchy_program():
    """Nested data-dependent branches over one 8-byte argument."""
    return Program([Function("f", ["x"], [
        Assign("c", Const(0)),
        If(BinOp(">", Var("x"), Const(100)),
           [Assign("c", Const(1)),
            If(BinOp("==", BinOp("&", Var("x"), Const(0xFF)), Const(0x7F)),
               [Assign("c", Const(2)), Probe(1)],
               [Probe(2)])],
           [If(BinOp("==", Var("x"), Const(42)),
               [Assign("c", Const(3)), Probe(3)],
               [Probe(4)]),
            If(BinOp("<", Var("x"), Const(5)),
               [Assign("c", BinOp("+", Var("c"), Const(10)))])]),
        Return(Var("c")),
    ])])


def license_check_program(secret=0x5A):
    return Program([Function("check", ["x"], [
        Probe(1),
        Assign("h", BinOp("^", BinOp("*", Var("x"), Const(13)), Const(0x27))),
        If(BinOp("==", BinOp("&", Var("h"), Const(0xFF)), Const(secret)),
           [Probe(2), Return(Const(1))],
           [Probe(3), Return(Const(0))]),
    ])])


def two_function_program():
    return Program([
        Function("first", ["x"], [Probe(11), Return(Const(111))]),
        Function("second", ["x"], [Probe(22), Return(Const(222))]),
    ])


def _explore(image, function, backtracking, seed=3, max_executions=60):
    engine = DseEngine(image, function, InputSpec(argument_sizes=[8]),
                       seed=seed, backtracking=backtracking)
    results, stats = engine.explore(time_budget=60, max_executions=max_executions)
    return results, stats


def _result_key(result):
    return (tuple(sorted(result.assignment.items())), result.return_value,
            result.probes, tuple(result.branch_addresses),
            tuple((c.expected for c in result.constraints)),
            result.instructions, result.faulted)


@pytest.mark.parametrize("caches", ["on", "off"])
def test_backtracking_explores_identical_path_set(monkeypatch, caches):
    """Backtracking DSE must be execution-for-execution identical to
    rerun-from-entry DSE — same inputs tried, same paths, same goals."""
    import repro.cpu.emulator as emulator_module

    if caches == "off":
        monkeypatch.setattr(emulator_module, "_DECODE_CACHE_DEFAULT", False)
        monkeypatch.setattr(emulator_module, "_TRACE_CACHE_DEFAULT", False)
    image = compile_program(branchy_program())
    rerun_results, rerun_stats = _explore(image, "f", backtracking=False)
    back_results, back_stats = _explore(image, "f", backtracking=True)

    assert [_result_key(r) for r in rerun_results] == \
           [_result_key(r) for r in back_results]
    assert rerun_stats.paths_seen == back_stats.paths_seen
    assert rerun_stats.executions == back_stats.executions
    # the rewinding actually engaged (it is not trivially exploring from entry)
    assert back_stats.snapshots_taken > 0
    assert back_stats.branch_restores > 0
    assert back_stats.instructions_replayed > 0
    assert rerun_stats.branch_restores == 0


def test_backtracking_differential_on_rop_chain():
    """On a ROP-obfuscated target the exactness guards force most paths back
    to the entry rewind — results must still be identical."""
    image = compile_program(license_check_program())
    obfuscated, report = rop_obfuscate(image, ["check"], RopConfig.ropk(0.25))
    assert report.coverage == 1.0

    def run(backtracking):
        engine = DseEngine(obfuscated, "check", InputSpec(argument_sizes=[1]),
                           seed=1, backtracking=backtracking)
        return engine.explore(time_budget=30, max_executions=15)

    rerun_results, rerun_stats = run(False)
    back_results, back_stats = run(True)
    assert [_result_key(r) for r in rerun_results] == \
           [_result_key(r) for r in back_results]
    assert rerun_stats.paths_seen == back_stats.paths_seen


def test_host_memory_calls_keep_backtracking_sound():
    """strlen reads symbolic guest memory the shadow cannot repair across a
    host call; exploration must still match rerun-from-entry exactly."""
    program = Program([Function("f", ["buf"], [
        Assign("first", Load(Var("buf"), 1)),
        If(BinOp(">", Var("first"), Const(0x40)), [Probe(1)], [Probe(2)]),
        Assign("n", Call("strlen", [Var("buf")])),
        If(BinOp("==", Var("n"), Const(0)), [Probe(3)], [Probe(4)]),
        Return(Var("n")),
    ])])
    image = compile_program(program)

    def run(backtracking):
        engine = DseEngine(image, "f",
                           InputSpec(argument_sizes=(), buffer_symbols=2),
                           seed=5, backtracking=backtracking)
        return engine.explore(time_budget=30, max_executions=30)

    rerun_results, rerun_stats = run(False)
    back_results, back_stats = run(True)
    assert [_result_key(r) for r in rerun_results] == \
           [_result_key(r) for r in back_results]
    assert rerun_stats.paths_seen == back_stats.paths_seen


def test_call_return_address_never_repaired_from_stale_shadow():
    """Regression: codegen passes arguments via 'push rax; pop rdi; call g',
    so the call's implicit return-address push lands on a slot whose shadow
    entry still holds the symbolic argument.  The shadow must invalidate the
    slot, or a mid-path resume repairs the live return address with the
    input value and the callee returns into garbage."""
    program = Program([
        Function("f", ["x"], [
            Probe(1),
            Assign("r", Call("g", [Var("x")])),
            If(BinOp(">", Var("r"), Const(0)), [Probe(3)], [Probe(4)]),
            Return(Var("r")),
        ]),
        Function("g", ["y"], [
            If(BinOp(">", Var("y"), Const(50)), [Return(Const(1))],
               [Return(Const(0))]),
        ]),
    ])
    image = compile_program(program)

    def run(backtracking):
        engine = DseEngine(image, "f", InputSpec(argument_sizes=[8]),
                           seed=5, backtracking=backtracking)
        return engine.explore(time_budget=30, max_executions=30)

    rerun_results, rerun_stats = run(False)
    back_results, back_stats = run(True)
    assert not any(r.faulted for r in back_results)
    assert [_result_key(r) for r in rerun_results] == \
           [_result_key(r) for r in back_results]
    assert rerun_stats.paths_seen == back_stats.paths_seen


def test_backtracking_finds_same_secret():
    image = compile_program(license_check_program())

    def run(backtracking):
        engine = DseEngine(image, "check", InputSpec(argument_sizes=[1]),
                           seed=2, backtracking=backtracking)
        witness = {}

        def stop(result):
            if not result.faulted and result.return_value == 1:
                witness.update(result.assignment)
                return True
            return False

        engine.explore(time_budget=30, max_executions=80, stop_condition=stop)
        return witness

    assert run(False) == run(True) != {}


# -- snapshot pool -------------------------------------------------------------
def test_snapshot_pool_evicts_deepest_lru_first():
    pool = SnapshotPool(capacity=2)
    pool.put((("a", True),), "depth1")
    pool.put((("a", True), ("b", False)), "depth2")
    pool.put((("a", True), ("c", True)), "depth2-other")
    # the deepest least-recently-used entry went first; the shallow survives
    assert (("a", True),) in pool
    assert (("a", True), ("b", False)) not in pool
    assert pool.evictions == 1


def test_snapshot_pool_nearest_ancestor_walks_prefixes():
    pool = SnapshotPool(capacity=8)
    pool.put((), "entry-branch")
    pool.put((("a", True),), "one-deep")
    key, value = pool.nearest_ancestor((("a", True), ("b", False), ("c", True)))
    assert key == (("a", True),) and value == "one-deep"
    key, value = pool.nearest_ancestor((("z", False),))
    assert key == () and value == "entry-branch"
    assert SnapshotPool(capacity=8).nearest_ancestor((("a", True),)) is None


def test_snapshot_pool_env_knob_disables_backtracking(monkeypatch):
    monkeypatch.setenv("REPRO_SNAPSHOT_POOL", "0")
    image = compile_program(branchy_program())
    engine = DseEngine(image, "f", InputSpec(argument_sizes=[8]), backtracking=True)
    assert not engine.backtracking
    results, stats = engine.explore(time_budget=30, max_executions=10)
    assert stats.snapshots_taken == 0 and stats.branch_restores == 0
    assert len(results) > 1


def test_bounded_pool_still_explores_identically():
    """Evictions only cost speed: a tiny pool must not change exploration."""
    image = compile_program(branchy_program())
    rerun_results, _ = _explore(image, "f", backtracking=False)

    engine = DseEngine(image, "f", InputSpec(argument_sizes=[8]), seed=3,
                       backtracking=True)
    engine._pool.capacity = 1
    results, stats = engine.explore(time_budget=60, max_executions=60)
    assert [_result_key(r) for r in rerun_results] == \
           [_result_key(r) for r in results]


# -- entry snapshot lifecycle --------------------------------------------------
def test_entry_snapshot_invalidated_when_function_changes():
    """Regression: retargeting an engine must not leak the previous symbol's
    prepared entry context."""
    image = compile_program(two_function_program())
    engine = DseEngine(image, "first", InputSpec(argument_sizes=[1]))
    first = engine.execute({"arg0": 0})
    assert first.return_value == 111 and first.probes == (11,)

    engine.function = "second"
    second = engine.execute({"arg0": 0})
    assert second.return_value == 222 and second.probes == (22,)
    # and back again, exercising the rebuilt snapshot rather than a stale one
    engine.function = "first"
    again = engine.execute({"arg0": 0})
    assert again.return_value == 111 and again.probes == (11,)


def test_retargeting_clears_branch_snapshot_pool():
    image = compile_program(branchy_program())
    engine = DseEngine(image, "f", InputSpec(argument_sizes=[8]), seed=3,
                       backtracking=True)
    engine.explore(time_budget=30, max_executions=20)
    assert len(engine._pool) > 0
    engine.function = "f"  # same symbol: nothing dropped
    engine.execute({"arg0": 1})
    assert len(engine._pool) > 0
    engine.invalidate_snapshots()
    assert len(engine._pool) == 0 and engine._entry_snapshot is None


def test_tds_entry_snapshot_tracks_function_switch():
    image = compile_program(two_function_program())
    simplifier = TaintDrivenSimplifier(image, "first")
    _, first_value = simplifier.record([0])
    simplifier.function = "second"
    _, second_value = simplifier.record([0])
    assert (first_value, second_value) == (111, 222)


# -- TDS / ROPMEMU parity ------------------------------------------------------
def test_tds_snapshot_path_matches_legacy():
    image = compile_program(license_check_program())
    obfuscated, _ = rop_obfuscate(image, ["check"], RopConfig.plain())
    snap = TaintDrivenSimplifier(obfuscated, "check")
    legacy = TaintDrivenSimplifier(obfuscated, "check", use_snapshots=False)
    for argument in (0, 7, 0x41):
        snap_trace, snap_value = snap.record([argument])
        legacy_trace, legacy_value = legacy.record([argument])
        assert snap_value == legacy_value
        assert [e.address for e in snap_trace] == [e.address for e in legacy_trace]
        assert [e.regs for e in snap_trace] == [e.regs for e in legacy_trace]
    snap_report = snap.simplify([7])
    legacy_report = legacy.simplify([7])
    assert snap_report == legacy_report


def test_ropmemu_snapshot_path_matches_legacy():
    image = compile_program(license_check_program())
    hardened, _ = rop_obfuscate(image, ["check"], RopConfig.ropk(0.0))
    snap = RopMemuExplorer(hardened, "check")
    legacy = RopMemuExplorer(hardened, "check", use_snapshots=False)
    snap_report = snap.explore([7], max_flips=6)
    legacy_report = legacy.explore([7], max_flips=6)
    assert snap_report.flag_leak_points == legacy_report.flag_leak_points
    assert [(a.trace_index, a.address, a.survived, a.new_probes)
            for a in snap_report.attempts] == \
           [(a.trace_index, a.address, a.survived, a.new_probes)
            for a in legacy_report.attempts]
    assert snap.stats.executions == len(snap_report.attempts) + 1


def test_host_state_never_leaks_across_rewinds():
    """Probes and output recorded by one execution must not bleed into the
    next one after the entry-snapshot restore."""
    image = compile_program(license_check_program())
    simplifier = TaintDrivenSimplifier(image, "check")
    lengths = set()
    for _ in range(3):
        trace, _ = simplifier.record([7])
        lengths.add(len(trace))
    assert len(lengths) == 1  # identical runs: nothing accumulated across rewinds
    engine = DseEngine(image, "check", InputSpec(argument_sizes=[1]))
    first = engine.execute({"arg0": 7})
    second = engine.execute({"arg0": 7})
    assert first.probes == second.probes
