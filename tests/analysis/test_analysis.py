"""Tests for CFG recovery, liveness and input-taint analyses."""

import pytest

from repro.analysis import compute_liveness, compute_symbolic_registers, recover_cfg
from repro.compiler import compile_function
from repro.isa.registers import Register
from repro.lang import Assign, BinOp, Const, Function, If, Return, Var, While


BRANCHY = Function("f", ["x"], [
    If(BinOp("==", Var("x"), Const(0)), [Return(Const(1))], [Return(Const(2))]),
])

LOOPY = Function("g", ["n"], [
    Assign("i", Const(0)),
    While(BinOp("<", Var("i"), Var("n")), [Assign("i", BinOp("+", Var("i"), Const(1)))]),
    Return(Var("i")),
])


def test_cfg_recovery_finds_branch_blocks():
    image = compile_function(BRANCHY)
    cfg = recover_cfg(image, "f")
    assert cfg.entry == image.function("f").address
    assert len(cfg.blocks) >= 3
    exits = [b for b in cfg.blocks.values() if b.is_exit]
    assert len(exits) >= 2  # both return paths end in ret


def test_cfg_recovery_loop_has_back_edge():
    image = compile_function(LOOPY)
    cfg = recover_cfg(image, "g")
    has_back_edge = any(successor <= block.start
                        for block in cfg.blocks.values() for successor in block.successors)
    assert has_back_edge
    predecessors = cfg.predecessors()
    assert any(len(p) > 1 for p in predecessors.values())  # loop head joined twice


def test_cfg_block_instructions_cover_function():
    image = compile_function(BRANCHY)
    cfg = recover_cfg(image, "f")
    assert cfg.instruction_count() == sum(len(b.instructions) for b in cfg.blocks.values())
    assert cfg.instruction_count() > 5


def test_cfg_recovery_rejects_unknown_function():
    image = compile_function(BRANCHY)
    with pytest.raises(KeyError):
        recover_cfg(image, "missing")


def test_liveness_argument_register_live_at_entry():
    image = compile_function(BRANCHY)
    cfg = recover_cfg(image, "f")
    liveness = compute_liveness(cfg)
    entry_block = cfg.blocks[cfg.entry]
    first_address = entry_block.instructions[0][0]
    # rdi carries the argument and is spilled by the prologue, so it is live
    assert Register.RDI in liveness.live_before[first_address]


def test_liveness_dead_registers_are_available_as_scratch():
    image = compile_function(BRANCHY)
    cfg = recover_cfg(image, "f")
    liveness = compute_liveness(cfg)
    some_address = cfg.blocks[cfg.entry].instructions[0][0]
    dead = liveness.dead_registers(some_address)
    assert Register.R12 in dead and Register.RSP not in dead


def test_flag_liveness_marks_compare_before_branch():
    image = compile_function(BRANCHY)
    cfg = recover_cfg(image, "f")
    liveness = compute_liveness(cfg)
    # at least one instruction (the cmp feeding the jcc) has live flags after it
    assert liveness.flags_live_after


def test_symbolic_registers_track_input_through_frame_slots():
    image = compile_function(BRANCHY)
    cfg = recover_cfg(image, "f")
    symbolic = compute_symbolic_registers(cfg)
    # somewhere in the function a register reloaded from the frame carries the input
    assert any(regs for regs in symbolic.values())


def test_symbolic_registers_empty_for_constant_function():
    constant = Function("c", [], [Return(Const(7))])
    image = compile_function(constant)
    cfg = recover_cfg(image, "c")
    symbolic = compute_symbolic_registers(cfg)
    flat = set()
    for regs in symbolic.values():
        flat |= {r for r in regs if r not in (Register.RDI, Register.RSI, Register.RDX,
                                              Register.RCX, Register.R8, Register.R9)}
    assert not flat
