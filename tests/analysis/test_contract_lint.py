"""The cross-tier contract checker: clean on the repo, loud on divergence.

Three layers of confidence:

* the checker exits 0 on the repository as it stands (and runs in-process
  here, so tier-1 CI fails the moment a contract regresses);
* a *planted* divergence — an emitter assigning a flag the registry says
  the instruction leaves untouched — is detected (the checker can actually
  see through the tier styles, it is not vacuously green);
* the PR 5 shift bug class specifically: deleting the masked-count-zero
  guard from one tier resurrects the historical bug, and the checker
  catches it statically.

The fixture tests copy ``src/`` into a tmp tree, mutate one tier, and run
``python -m repro.analysis.lint`` in a subprocess with ``PYTHONPATH``
pointing at the mutated copy — the checker resolves tier sources through
the imported modules, so no flag beyond ``PYTHONPATH`` is needed.
"""

import shutil
import subprocess
import sys
from pathlib import Path

from repro.analysis import lint

REPO = Path(__file__).resolve().parent.parent.parent


def _run_lint_on_copy(tmp_path, mutate):
    """Copy src/, apply ``mutate(copy_root)``, run the lint CLI on it."""
    copy = tmp_path / "src"
    shutil.copytree(REPO / "src", copy)
    mutate(copy)
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", "--root",
         str(tmp_path)],
        env={"PYTHONPATH": str(copy), "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True)
    return result


def test_repo_is_clean():
    """The real repository passes — this is the tier-1 gate itself."""
    assert lint.main([]) == 0


def test_planted_flag_divergence_is_detected(tmp_path):
    """An emitter touching OF where the registry says 'untouched' fails."""
    def plant(copy):
        path = copy / "repro" / "cpu" / "emulator.py"
        text = path.read_text()
        anchor = "    def _op_mov(self, instruction: Instruction) -> None:\n"
        assert text.count(anchor) == 1
        path.write_text(text.replace(
            anchor, anchor + "        self.state.of = 0\n"))

    result = _run_lint_on_copy(tmp_path, plant)
    assert result.returncode != 0, result.stdout + result.stderr
    assert "flag-contract" in result.stdout
    assert "mov" in result.stdout.lower()


def test_missing_zero_count_guard_is_detected(tmp_path):
    """Reintroducing the PR 5 shift bug in one tier fails the checker.

    x86 semantics: a shift whose masked count is zero modifies neither the
    destination nor any flag.  The closure fuser encodes that as an early
    ``return _NOOP``; delete it and the fused shift silently clobbers
    flags on zero counts again — exactly the historical divergence the
    dynamic differential tests only catch when a trace happens to contain
    a zero-count shift.  The checker must catch it statically.
    """
    def plant(copy):
        path = copy / "repro" / "cpu" / "trace.py"
        text = path.read_text()
        guard = ("    if amount == 0:\n"
                 "        # x86: a masked count of zero modifies neither "
                 "flags nor the\n"
                 "        # destination — the whole instruction folds away\n"
                 "        return _NOOP\n")
        assert text.count(guard) == 1
        path.write_text(text.replace(guard, ""))

    result = _run_lint_on_copy(tmp_path, plant)
    assert result.returncode != 0, result.stdout + result.stderr
    assert "zero-count-guard" in result.stdout


def test_incomplete_tier_registration_is_detected(tmp_path):
    """Dropping a mnemonic from a tier's coverage map fails at import.

    ``register_tier`` requires covered ∪ declined to partition the full
    mnemonic set, so a dispatch-table entry silently dropped from one tier
    is an import-time error the checker reports rather than swallows.
    """
    def plant(copy):
        path = copy / "repro" / "cpu" / "trace.py"
        text = path.read_text()
        entry = "        Mnemonic.NEG: \"_fuse_neg\",\n"
        assert text.count(entry) == 1
        path.write_text(text.replace(entry, ""))

    result = _run_lint_on_copy(tmp_path, plant)
    assert result.returncode != 0, result.stdout + result.stderr
    assert "tier-import" in result.stdout


def test_unannotated_broad_except_is_detected(tmp_path):
    """A fresh ``except Exception:`` without an allow comment is flagged."""
    def plant(copy):
        path = copy / "repro" / "service" / "core.py"
        path.write_text(path.read_text() + (
            "\n\ndef _swallow():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        return None\n"))

    result = _run_lint_on_copy(tmp_path, plant)
    assert result.returncode != 0, result.stdout + result.stderr
    assert "broad-except" in result.stdout


def test_raw_env_read_outside_knobs_is_detected(tmp_path):
    """os.environ reads must go through repro.knobs, repo-wide."""
    def plant(copy):
        path = copy / "repro" / "attacks" / "goals.py"
        path.write_text(path.read_text() + (
            "\n\ndef _sneaky_knob():\n"
            "    import os\n"
            "    return os.environ.get(\"REPRO_SNEAKY\", \"0\")\n"))

    result = _run_lint_on_copy(tmp_path, plant)
    assert result.returncode != 0, result.stdout + result.stderr
    assert "env-read" in result.stdout


def test_wallclock_in_row_producing_path_is_detected(tmp_path):
    """Unannotated wall-clock in the determinism-scoped modules fails."""
    def plant(copy):
        path = copy / "repro" / "attacks" / "frontier.py"
        path.write_text(path.read_text() + (
            "\n\ndef _timestamped_row():\n"
            "    import time\n"
            "    return {\"when\": time.time()}\n"))

    result = _run_lint_on_copy(tmp_path, plant)
    assert result.returncode != 0, result.stdout + result.stderr
    assert "wallclock" in result.stdout
