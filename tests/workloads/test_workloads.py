"""Sanity tests for the workload generators."""

import pytest

from repro.binary import load_image
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.cpu import call_function
from repro.workloads import (
    CLBG_BENCHMARKS,
    CONTROL_STRUCTURES,
    RandomFunSpec,
    base64_check_program,
    build_clbg_program,
    build_coreutils_corpus,
    generate_random_function,
    generate_table2_suite,
)
from repro.workloads.base64_ref import base64_program, reference_encode


def test_table2_suite_has_72_functions():
    assert len(generate_table2_suite()) == 6 * 4 * 3


@pytest.mark.parametrize("structure", [s[0] for s in CONTROL_STRUCTURES])
def test_randomfuns_secret_is_reachable(structure):
    spec = RandomFunSpec(structure=structure, input_size=1, seed=1)
    program, secret, _ = generate_random_function(spec)
    image = compile_program(program)
    accept, _ = call_function(load_image(image), spec.name, [secret], max_steps=5_000_000)
    assert accept == 1
    reject, _ = call_function(load_image(image), spec.name, [(secret + 1) & 0xFF],
                              max_steps=5_000_000)
    assert reject in (0, 1)  # usually 0; hash collisions are possible but rare


def test_randomfuns_coverage_variant_has_probes():
    spec = RandomFunSpec(structure=CONTROL_STRUCTURES[1][0], input_size=1, seed=2,
                         point_test=False)
    program, _, probe_count = generate_random_function(spec)
    assert probe_count > 0
    image = compile_program(program)
    _, emulator = call_function(load_image(image), spec.name, [5], max_steps=5_000_000)
    assert emulator.host.probes


def test_randomfuns_generation_is_deterministic():
    spec = RandomFunSpec(structure=CONTROL_STRUCTURES[0][0], input_size=2, seed=3)
    _, secret_a, _ = generate_random_function(spec)
    _, secret_b, _ = generate_random_function(spec)
    assert secret_a == secret_b


@pytest.mark.parametrize("name", sorted(CLBG_BENCHMARKS))
def test_clbg_benchmarks_run_natively(name):
    program, entry, argument, _ = build_clbg_program(name)
    image = compile_program(program)
    result, _ = call_function(load_image(image), entry, [argument], max_steps=20_000_000)
    assert result >= 0


def test_clbg_benchmark_survives_rop_rewriting():
    program, entry, argument, targets = build_clbg_program("fasta")
    image = compile_program(program)
    native, _ = call_function(load_image(image), entry, [argument], max_steps=20_000_000)
    obfuscated, report = rop_obfuscate(image, targets, RopConfig.ropk(0.25))
    assert report.coverage == 1.0, report.failure_categories()
    rewritten, _ = call_function(load_image(obfuscated), entry, [argument],
                                 max_steps=60_000_000)
    assert rewritten == native


def test_base64_encoder_matches_reference():
    program = base64_program()
    image = compile_program(program)
    loaded = load_image(image)
    source = loaded.heap_base + 0x10
    destination = loaded.heap_base + 0x100
    data = b"raindr"
    for index, byte in enumerate(data):
        loaded.memory.write_int(source + index, byte, 1)
    _, emulator = call_function(loaded, "base64_encode", [source, len(data), destination],
                                max_steps=5_000_000)
    encoded = loaded.memory.read(destination, 8)
    assert encoded == reference_encode(data)


def test_base64_check_accepts_only_the_secret():
    program, secret = base64_check_program()
    image = compile_program(program)

    def run(data):
        loaded = load_image(image)
        source = loaded.heap_base + 0x10
        for index, byte in enumerate(data):
            loaded.memory.write_int(source + index, byte, 1)
        return call_function(loaded, "base64_check", [source], max_steps=5_000_000)[0]

    assert run(secret) == 1
    assert run(b"wrong!") == 0


def test_coreutils_corpus_shape():
    corpus = build_coreutils_corpus(programs=3, functions_per_program=5, seed=7)
    assert len(corpus) == 3
    categories = {entry.category for _, entries in corpus for entry in entries}
    assert "normal" in categories
    # every compiled image exposes its function symbols
    image, entries = corpus[0]
    for entry in entries:
        assert entry.name in image.symbols
