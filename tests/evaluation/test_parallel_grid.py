"""Sharded grid evaluation: unit decomposition, merge, pool and determinism."""

import json

import pytest

from repro.attacks import AttackBudget
from repro.attacks.engine import sharded_pool_capacity
from repro.evaluation.configurations import NATIVE, nvm, ropk
from repro.evaluation.grid import (
    _config_aggregates,
    compare_summaries,
    run_grid,
    write_artifacts,
)
from repro.evaluation.parallel import (
    WorkerPool,
    executions_by_worker,
    figure5_units,
    fork_available,
    merge_table2,
    table2_units,
    table3_units,
)
from repro.workloads.randomfuns import RandomFunSpec


def _strip_wallclock(results):
    """Drop the wall-clock fields that are nondeterministic even serially."""
    stripped = {}
    for name, rows in results.items():
        rows = [dict(row) for row in rows]
        for row in rows:
            row.pop("average_time", None)
        stripped[name] = rows
    return stripped


@pytest.mark.skipif(not fork_available(), reason="fork start method required")
def test_smoke_grid_parallel_rows_match_serial():
    """The tentpole determinism property: workers=2 == workers=1, row for row.

    The smoke slice's budgets are deterministic caps (executions, solver
    queries, instructions) with a generous wall clock, so every count in
    every row must agree exactly; only ``average_time`` is wall-clock.
    """
    serial = run_grid("smoke", seed=1, workers=1)
    meta = {}
    parallel = run_grid("smoke", seed=1, workers=2, meta=meta)
    assert _strip_wallclock(serial) == _strip_wallclock(parallel)
    # the JSON serialization (what the artifacts actually persist) agrees too
    assert json.dumps(_strip_wallclock(serial), sort_keys=True) == \
        json.dumps(_strip_wallclock(parallel), sort_keys=True)
    # the side-channel attributes every attack execution to some worker
    total = sum(row["executions"] for row in serial["table2"])
    assert sum(meta["executions_by_worker"].values()) == total


def test_unit_decomposition_orders_match_serial_loops():
    f5 = figure5_units(("fasta", "rev-comp"), (0.25, 1.0), nvm(1, "all"), seed=1)
    assert [(u.benchmark, u.k) for u in f5] == [
        ("fasta", 0.25), ("fasta", 1.0), ("rev-comp", 0.25), ("rev-comp", 1.0)]
    t3 = table3_units(("fasta",), (0.05, 0.25), seed=1)
    assert [(u.benchmark, u.k) for u in t3] == [("fasta", 0.05), ("fasta", 0.25)]
    specs = [RandomFunSpec(structure="if(bb4,bb4)", input_size=1, seed=s)
             for s in (1, 2)]
    t2 = table2_units([NATIVE, ropk(1.0)], specs, AttackBudget(),
                      include_coverage=False, seed=1)
    assert [(u.configuration.name, u.spec.seed) for u in t2] == [
        ("NATIVE", 1), ("NATIVE", 2), ("ROP1.00", 1), ("ROP1.00", 2)]


def test_merge_table2_reassembles_serial_rows():
    specs = [RandomFunSpec(structure="if(bb4,bb4)", input_size=1, seed=s)
             for s in (1, 2)]
    units = table2_units([NATIVE, ropk(1.0)], specs, AttackBudget(),
                         include_coverage=True, seed=1)
    cells = [
        # NATIVE: both secrets found, one full coverage
        {"secret_found": True, "time_to_success": 0.5, "coverage_full": True,
         "executions": 3, "instructions": 100, "branch_restores": 0},
        {"secret_found": True, "time_to_success": 1.5, "coverage_full": False,
         "executions": 4, "instructions": 200, "branch_restores": 1},
        # ROP1.00: one secret
        {"secret_found": False, "time_to_success": 5.0, "coverage_full": False,
         "executions": 10, "instructions": 9000, "branch_restores": 2},
        {"secret_found": True, "time_to_success": 2.0, "coverage_full": False,
         "executions": 12, "instructions": 8000, "branch_restores": 3},
    ]
    rows = merge_table2(units, cells)
    assert rows == [
        {"configuration": "NATIVE", "secrets_found": 2, "functions": 2,
         "average_time": 1.0, "full_coverage": 1, "executions": 7,
         "instructions": 300, "branch_restores": 1},
        {"configuration": "ROP1.00", "secrets_found": 1, "functions": 2,
         "average_time": 2.0, "full_coverage": 0, "executions": 22,
         "instructions": 17000, "branch_restores": 5},
    ]
    # unsuccessful-only configurations average to 0.0 like the serial driver
    rows = merge_table2(units[:1], [dict(cells[2])])
    assert rows[0]["average_time"] == 0.0

    by_worker = executions_by_worker([0, 1, 0, 1], cells)
    assert by_worker == {"0": 13, "1": 16}


def test_worker_pool_serial_fallback_and_error_quarantine():
    pool = WorkerPool(1)
    assert not pool.parallel
    units = table3_units(("fasta",), (0.0,), seed=1)
    results, worker_ids = pool.map(units)
    assert worker_ids == [0]
    assert results[0]["benchmark"] == "fasta"
    assert pool.map([]) == ([], [])

    # a poisoned unit no longer aborts the run: after the retries exhaust
    # it is quarantined as a status=failed row and the map completes
    monkeypatch_retries = {"REPRO_UNIT_RETRIES": "0"}
    import os
    old = {k: os.environ.get(k) for k in monkeypatch_retries}
    os.environ.update(monkeypatch_retries)
    try:
        bad, _ = pool.map([object()])
        assert bad[0]["status"] == "failed"
        assert "unknown work unit" in bad[0]["error"]
        assert pool.stats.failed_units == 1

        if fork_available():
            with WorkerPool(2) as bad_pool:
                rows, _ = bad_pool.map([object(), *units])
                assert rows[0]["status"] == "failed"
                assert "unknown work unit" in rows[0]["error"]
                assert rows[1]["benchmark"] == "fasta"
                assert bad_pool.stats.failed_units == 1
    finally:
        for key, value in old.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def test_sharded_pool_capacity_divides_global_budget():
    assert sharded_pool_capacity(1, total=32) == 32
    assert sharded_pool_capacity(4, total=32) == 8
    # a positive budget never silently disables a worker's backtracking
    assert sharded_pool_capacity(64, total=32) == 1
    # a disabled budget stays disabled for every worker
    assert sharded_pool_capacity(4, total=0) == 0


def test_config_aggregates_sums_rows_per_configuration():
    """Multi-seed grids emit several rows per config; none may be dropped."""
    rows = [
        {"configuration": "ROP1.00", "secrets_found": 2, "functions": 6,
         "full_coverage": 1, "average_time": 3.0},
        {"configuration": "ROP1.00", "secrets_found": 4, "functions": 6,
         "full_coverage": 2, "average_time": 1.5},
        {"configuration": "NATIVE", "secrets_found": 6, "functions": 6,
         "full_coverage": 6, "average_time": 0.5},
    ]
    aggregates = _config_aggregates(rows)
    assert aggregates["ROP1.00"]["secret_rate"] == round(6 / 12, 4)
    assert aggregates["ROP1.00"]["coverage_rate"] == round(3 / 12, 4)
    # success-weighted: (3.0*2 + 1.5*4) / 6
    assert aggregates["ROP1.00"]["average_time"] == 2.0
    assert aggregates["NATIVE"]["secret_rate"] == 1.0
    # a configuration with zero successes averages to 0.0, not a ZeroDivision
    zero = _config_aggregates([{"configuration": "X", "secrets_found": 0,
                                "functions": 6, "full_coverage": 0,
                                "average_time": 0.0}])
    assert zero["X"]["average_time"] == 0.0


def test_write_artifacts_records_part_times_and_worker_counts(tmp_path):
    table2 = [{"configuration": "NATIVE", "secrets_found": 1, "functions": 1,
               "full_coverage": 0, "average_time": 0.1, "executions": 5,
               "instructions": 100, "branch_restores": 0}]
    out = write_artifacts({"table2": table2}, tmp_path / "run", "smoke",
                          elapsed=3.0,
                          elapsed_by_part={"table2": 2.5, "figure5": 0.5},
                          executions_by_worker={"0": 3, "1": 2}, workers=2)
    summary = json.loads((out / "summary.json").read_text())
    assert summary["elapsed_by_part"] == {"table2": 2.5, "figure5": 0.5}
    assert summary["workers"] == 2
    assert summary["attack_engine"]["executions_by_worker"] == {"0": 3, "1": 2}
    # the pre-PR call shape still works (existing callers and old scripts)
    out = write_artifacts({"table2": table2}, tmp_path / "old", "smoke",
                          elapsed=1.0)
    summary = json.loads((out / "summary.json").read_text())
    assert summary["elapsed_by_part"] == {}
    assert summary["attack_engine"]["executions_by_worker"] == {}


def test_compare_tolerates_schema_growth():
    base = {"table2_configs": {"NATIVE": {
        "secret_rate": 1.0, "coverage_rate": 1.0, "average_time": 0.1}}}
    grown = {"table2_configs": {"NATIVE": {
        "secret_rate": 1.0, "coverage_rate": 1.0, "average_time": 0.1,
        "novel_metric": 42}},
        "novel_top_level": {"x": 1}}
    lines, shifted = compare_summaries(base, grown)
    assert not shifted
    assert any("ignoring unknown new summary key(s): novel_top_level" in line
               for line in lines)

    # a metric missing from one side is skipped with a notice, not a KeyError
    old_schema = {"table2_configs": {"NATIVE": {"secret_rate": 1.0,
                                                "average_time": 0.1}}}
    lines, shifted = compare_summaries(old_schema, base)
    assert not shifted
    assert any("coverage_rate missing" in line for line in lines)
