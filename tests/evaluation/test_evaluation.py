"""Smoke tests for the evaluation drivers (tiny scales)."""

from repro.attacks import AttackBudget
from repro.evaluation import (
    render_table,
    run_case_study,
    run_coverage_study,
    run_figure5,
    run_table2,
    run_table3,
)
from repro.evaluation.configurations import NATIVE, ropk
from repro.workloads.randomfuns import RandomFunSpec


def test_render_table_alignment():
    text = render_table(("a", "bbbb"), [(1, 2), (333, 4)], title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "333" in lines[-1]


def test_run_table2_smoke():
    specs = [RandomFunSpec(structure="if(bb4,bb4)", input_size=1, seed=1)]
    rows = run_table2(configurations=[NATIVE, ropk(1.0)], specs=specs,
                      budget=AttackBudget(seconds=1.5, max_executions=25),
                      include_coverage=True)
    assert len(rows) == 2
    native = rows[0]
    assert native.functions == 1
    assert native.secrets_found in (0, 1)


def test_run_table3_smoke():
    rows = run_table3(benchmarks=["fasta"], k_values=[0.0, 1.0])
    assert len(rows) == 2
    assert rows[1].total_gadgets > rows[0].total_gadgets


def test_run_figure5_smoke():
    bars = run_figure5(benchmarks=["fasta"], k_values=[0.25])
    assert len(bars) == 1
    assert bars[0].slowdown_vs_native > 1.0


def test_run_coverage_study_smoke():
    result = run_coverage_study(programs=3, functions_per_program=4)
    assert result.total_functions == result.skipped_small + result.attempted
    assert 0.0 <= result.coverage <= 1.0


def test_grid_driver_writes_artifacts(tmp_path):
    from repro.evaluation.grid import run_grid, write_artifacts
    import json

    results = run_grid("smoke", parts=["table3"])
    assert set(results) == {"table3"} and results["table3"]
    out = write_artifacts(results, tmp_path / "grid", "smoke", elapsed=1.0)
    rows = json.loads((out / "table3.json").read_text())
    assert rows == results["table3"]
    summary = json.loads((out / "summary.json").read_text())
    assert summary["slice"] == "smoke"
    assert summary["grids"] == {"table3": len(rows)}
    assert set(summary["attack_engine"]) == {"executions", "instructions",
                                             "branch_restores",
                                             "executions_by_worker"}
    assert summary["workers"] == 1


def test_run_case_study_smoke():
    results = run_case_study(configurations=[NATIVE, ropk(0.0)],
                             budget=AttackBudget(seconds=1.0, max_executions=10))
    assert len(results) == 2
    assert results[1].execution_instructions > results[0].execution_instructions
