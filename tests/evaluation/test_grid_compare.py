"""Trend reporting: summary aggregation and --compare behaviour."""

import json

from repro.evaluation.grid import (
    _config_aggregates,
    _overhead_aggregates,
    compare_summaries,
    main,
    write_artifacts,
)

_TABLE2 = [
    {"configuration": "NATIVE", "secrets_found": 6, "functions": 6,
     "full_coverage": 5, "average_time": 0.01, "executions": 30,
     "instructions": 1000, "branch_restores": 0},
    {"configuration": "ROP1.00", "secrets_found": 1, "functions": 6,
     "full_coverage": 0, "average_time": 4.0, "executions": 900,
     "instructions": 90000, "branch_restores": 12},
]

_FIGURE5 = [
    {"benchmark": "fasta", "k": 1.0, "slowdown_vs_baseline": 6.4},
    {"benchmark": "rev-comp", "k": 0.25, "slowdown_vs_baseline": 3.1},
]


def _summary(tmp_path, name, table2=_TABLE2, figure5=_FIGURE5):
    out = write_artifacts({"table2": table2, "figure5": figure5},
                          tmp_path / name, "reduced", elapsed=1.0)
    return out / "summary.json"


def test_summary_carries_per_config_aggregates(tmp_path):
    payload = json.loads(_summary(tmp_path, "run").read_text())
    assert payload["table2_configs"]["NATIVE"]["secret_rate"] == 1.0
    assert payload["table2_configs"]["ROP1.00"]["secret_rate"] == round(1 / 6, 4)
    assert payload["figure5_overheads"]["fasta@k1.00"] == 6.4
    assert payload["attack_engine"]["branch_restores"] == 12


def test_compare_stable_and_shifted():
    old = {"table2_configs": _config_aggregates(_TABLE2),
           "figure5_overheads": _overhead_aggregates(_FIGURE5)}
    same_lines, same_shifted = compare_summaries(old, old)
    assert not same_shifted
    assert any("NATIVE" in line for line in same_lines)

    new_table2 = [dict(row) for row in _TABLE2]
    new_table2[1]["secrets_found"] = 4  # 1/6 -> 4/6: beyond the 0.1 threshold
    new = {"table2_configs": _config_aggregates(new_table2),
           "figure5_overheads": _overhead_aggregates(_FIGURE5)}
    lines, shifted = compare_summaries(old, new)
    assert shifted
    assert any(line.startswith("!! ") and "ROP1.00" in line for line in lines)

    # overhead shifts gate on the relative threshold
    new_figure5 = [dict(row) for row in _FIGURE5]
    new_figure5[0]["slowdown_vs_baseline"] = 9.0  # +40% > 25%
    new = {"table2_configs": _config_aggregates(_TABLE2),
           "figure5_overheads": _overhead_aggregates(new_figure5)}
    _, shifted = compare_summaries(old, new)
    assert shifted
    _, tolerant = compare_summaries(old, new, overhead_threshold=0.5)
    assert not tolerant


def test_compare_cli_exit_codes(tmp_path, capsys):
    old = _summary(tmp_path, "old")
    assert main(["--compare", str(old), str(old)]) == 0
    assert "RESULT: stable" in capsys.readouterr().out

    shifted_rows = [dict(row) for row in _TABLE2]
    shifted_rows[1]["secrets_found"] = 5
    new = _summary(tmp_path, "new", table2=shifted_rows)
    assert main(["--compare", str(old), str(new)]) == 1
    out = capsys.readouterr().out
    assert "RESULT: shifted beyond thresholds" in out


def test_compare_disjoint_summaries_is_stable():
    lines, shifted = compare_summaries({"table2_configs": {"A": {
        "secret_rate": 1.0, "coverage_rate": 1.0, "average_time": 0.1}}},
        {"table2_configs": {"B": {
            "secret_rate": 0.0, "coverage_rate": 0.0, "average_time": 0.1}}})
    assert not shifted
    # disjoint sets are reported as configuration-axis notes, never diffed
    assert any("only in old run" in line and "A" in line for line in lines)
    assert any("only in new run" in line and "B" in line for line in lines)
