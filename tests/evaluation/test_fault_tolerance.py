"""Fault tolerance: injection harness, supervised pool, checkpoint-resume."""

import json
import math

import pytest

from repro.evaluation import parallel
from repro.evaluation.grid import (
    Checkpoint,
    compare_summaries,
    load_resume,
    run_grid,
    write_artifacts,
)
from repro.evaluation.parallel import (
    WorkerPool,
    fork_available,
    quarantine_row,
    table3_units,
    unit_fingerprint,
)
from repro.faults import InjectedFault, inject_fault, parse_fault_spec

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method required")


def _units():
    """Three cheap table3 units (k=0 skips obfuscation entirely)."""
    return table3_units(("fasta",), (0.0, 0.05, 0.25), seed=1)


def _ok_rows(rows):
    return [row for row in rows if row.get("status") != "failed"]


# -- the harness itself -------------------------------------------------------

def test_parse_fault_spec_modes_counts_and_malformed_directives():
    spec = parse_fault_spec("0:raise,3:hang:2,5:kill:always, 7 : exit0 ")
    assert spec == {0: ("raise", 1.0), 3: ("hang", 2.0),
                    5: ("kill", math.inf), 7: ("exit0", 1.0)}
    # malformed directives are skipped, never an error: a typo in the
    # environment must not crash a worker that would otherwise run fine
    assert parse_fault_spec("junk,1:frobnicate,x:raise,2:raise:soon,,") == {}
    assert parse_fault_spec("") == {}
    assert parse_fault_spec("4") == {}


def test_parse_fault_spec_slow_mode_carries_its_delay():
    spec = parse_fault_spec("0:slow:250,1:slow:100:2,2:slow:50:always")
    assert spec == {0: ("slow:250", 1.0), 1: ("slow:100", 2.0),
                    2: ("slow:50", math.inf)}
    # malformed slow directives (missing/negative/non-integer delay) are
    # skipped like any other typo, never an error
    assert parse_fault_spec("0:slow,1:slow:-5,2:slow:fast,3:slow:1:2:3") == {}


def test_inject_slow_delays_then_returns_normally():
    import time
    spec = parse_fault_spec("0:slow:120")
    started = time.monotonic()
    inject_fault(0, attempt=0, spec=spec)   # sleeps, does not raise
    assert time.monotonic() - started >= 0.1
    started = time.monotonic()
    inject_fault(0, attempt=1, spec=spec)   # count exhausted: no delay
    assert time.monotonic() - started < 0.1
    # slow is honoured inline too — it cannot corrupt the driver
    started = time.monotonic()
    inject_fault(0, attempt=0, spec=spec, inline=True)
    assert time.monotonic() - started >= 0.1


def test_inject_fault_counts_attempts_and_inline_gating():
    spec = parse_fault_spec("0:raise,1:raise:always,2:kill")
    with pytest.raises(InjectedFault):
        inject_fault(0, attempt=0, spec=spec)
    # count=1 (the default): only the first attempt fails, the retry runs
    inject_fault(0, attempt=1, spec=spec)
    with pytest.raises(InjectedFault):
        inject_fault(1, attempt=5, spec=spec)  # "always" never stops firing
    inject_fault(3, attempt=0, spec=spec)  # untargeted index: no-op
    # inline execution only honours raise — kill would take down the driver
    inject_fault(2, attempt=0, spec=spec, inline=True)


# -- supervised pool recovery -------------------------------------------------

def _map_with_env(monkeypatch, env, workers=2, units=None):
    for key, value in env.items():
        monkeypatch.setenv(key, value)
    with WorkerPool(workers) as pool:
        rows, worker_ids = pool.map(units if units is not None else _units())
    return rows, worker_ids, pool.stats


@needs_fork
def test_raise_once_is_retried_and_rows_match_unfaulted(monkeypatch):
    reference, _ = WorkerPool(1).map(_units())
    rows, _, stats = _map_with_env(monkeypatch, {"REPRO_FAULT_INJECT": "1:raise"})
    assert rows == reference
    assert stats.retries == 1
    assert stats.failed_units == 0
    assert stats.respawns == 0


@needs_fork
def test_raise_always_quarantines_after_retries(monkeypatch):
    reference, _ = WorkerPool(1).map(_units())
    rows, _, stats = _map_with_env(
        monkeypatch,
        {"REPRO_FAULT_INJECT": "1:raise:always", "REPRO_UNIT_RETRIES": "1"})
    assert stats.failed_units == 1
    assert stats.retries == 1
    failed = rows[1]
    assert failed["status"] == "failed"
    assert "InjectedFault" in failed["error"]
    assert failed["part"] == "table3"
    assert failed["benchmark"] == "fasta"
    # the surviving rows are untouched by the quarantine
    assert [rows[0], rows[2]] == [reference[0], reference[2]]


@needs_fork
@pytest.mark.parametrize("mode", ["kill", "exit0"])
def test_worker_death_is_detected_respawned_and_unit_retried(monkeypatch, mode):
    """SIGKILL and the *clean* premature exit 0 — the case an exit-code
    filter cannot see — both resolve to a respawn plus a successful retry."""
    reference, _ = WorkerPool(1).map(_units())
    rows, _, stats = _map_with_env(
        monkeypatch, {"REPRO_FAULT_INJECT": f"0:{mode}"})
    assert rows == reference
    assert stats.respawns >= 1
    assert stats.retries == 1
    assert stats.failed_units == 0


@needs_fork
def test_hang_is_killed_by_unit_deadline_and_retried(monkeypatch):
    reference, _ = WorkerPool(1).map(_units())
    rows, _, stats = _map_with_env(
        monkeypatch,
        {"REPRO_FAULT_INJECT": "2:hang", "REPRO_UNIT_TIMEOUT": "2"})
    assert rows == reference
    assert stats.timeouts == 1
    assert stats.retries == 1
    assert stats.failed_units == 0


@needs_fork
def test_slow_fault_delays_but_never_alters_rows(monkeypatch):
    """slow:ms probes deadline-boundary behavior: the unit finishes late but
    honestly, so nothing is retried and the rows are untouched."""
    reference, _ = WorkerPool(1).map(_units())
    rows, _, stats = _map_with_env(
        monkeypatch, {"REPRO_FAULT_INJECT": "1:slow:200"})
    assert rows == reference
    assert stats.retries == 0
    assert stats.timeouts == 0
    assert stats.failed_units == 0


@needs_fork
def test_fault_indexes_are_global_across_map_calls(monkeypatch):
    """REPRO_FAULT_INJECT indexes the pool-lifetime dispatch sequence, so a
    directive can target a unit of the *second* map() call deterministically."""
    monkeypatch.setenv("REPRO_FAULT_INJECT", "4:raise:always")
    monkeypatch.setenv("REPRO_UNIT_RETRIES", "0")
    with WorkerPool(2) as pool:
        first, _ = pool.map(_units())   # global indexes 0..2
        second, _ = pool.map(_units())  # global indexes 3..5
    assert all(row.get("status") != "failed" for row in first)
    assert second[1]["status"] == "failed"
    assert pool.stats.failed_units == 1


# -- fingerprints and the checkpoint ledger -----------------------------------

def test_unit_fingerprint_is_deterministic_and_parameter_sensitive():
    a, b, c = _units()
    assert unit_fingerprint(a) == unit_fingerprint(table3_units(
        ("fasta",), (0.0,), seed=1)[0])
    assert len({unit_fingerprint(u) for u in (a, b, c)}) == 3
    # any parameter change invalidates the fingerprint — a checkpoint from
    # a different seed must match nothing
    assert unit_fingerprint(a) != unit_fingerprint(
        table3_units(("fasta",), (0.0,), seed=2)[0])
    assert unit_fingerprint(object()).startswith("object:")


def test_checkpoint_roundtrip_tolerates_torn_and_corrupt_lines(tmp_path):
    with Checkpoint(tmp_path) as checkpoint:
        checkpoint.record("fp1", "table3", {"benchmark": "fasta"})
        checkpoint.record("fp2", "figure5", {"k": 1.0})
    # simulate a driver killed mid-write: torn final line plus line noise
    path = tmp_path / Checkpoint.FILENAME
    path.write_text(path.read_text() + "not json\n" + '{"fingerprint": "fp3"')
    entries = Checkpoint.load(tmp_path)
    assert entries == {
        "fp1": {"part": "table3", "result": {"benchmark": "fasta"}},
        "fp2": {"part": "figure5", "result": {"k": 1.0}},
    }
    assert Checkpoint.load(tmp_path / "nowhere") == {}
    # appending (a resumed run reusing the directory) never truncates
    with Checkpoint(tmp_path) as checkpoint:
        checkpoint.record("fp4", "table3", {})
    assert set(Checkpoint.load(tmp_path)) == {"fp1", "fp2", "fp4"}


def test_checkpoint_meta_written_once_and_resume_validates_axes(tmp_path):
    """A --resume ledger recorded under a different slice/seed would match
    nothing fingerprint-wise, silently reading as a fresh run; the meta line
    makes the mismatch loud and the ledger is ignored."""
    axes = {"slice": "smoke", "seed": 1}
    with Checkpoint(tmp_path, meta=axes) as checkpoint:
        checkpoint.record("fp1", "table3", {})
    assert Checkpoint.load_meta(tmp_path) == axes
    # reopening an existing ledger never writes a second meta line
    with Checkpoint(tmp_path, meta=axes) as checkpoint:
        checkpoint.record("fp2", "table3", {})
    lines = (tmp_path / Checkpoint.FILENAME).read_text().splitlines()
    assert sum(1 for line in lines if "meta" in json.loads(line)) == 1
    # the meta line never pollutes the fingerprint ledger
    assert set(Checkpoint.load(tmp_path)) == {"fp1", "fp2"}

    completed, messages = load_resume(tmp_path, axes)
    assert set(completed) == {"fp1", "fp2"}
    assert any("2 completed unit(s)" in message for message in messages)

    completed, messages = load_resume(tmp_path, {"slice": "smoke", "seed": 2})
    assert completed == {}
    assert any("WARNING" in message and "seed=1" in message
               and "seed=2" in message for message in messages)


def test_legacy_ledger_without_meta_still_resumes(tmp_path):
    with Checkpoint(tmp_path) as checkpoint:  # pre-meta ledger shape
        checkpoint.record("fp1", "table3", {})
    assert Checkpoint.load_meta(tmp_path) is None
    assert Checkpoint.load_meta(tmp_path / "nowhere") is None
    completed, messages = load_resume(tmp_path, {"slice": "full", "seed": 9})
    assert set(completed) == {"fp1"}
    assert not any("WARNING" in message for message in messages)


def test_resume_skips_completed_units_entirely(tmp_path, monkeypatch):
    """A resumed grid re-executes zero completed units: with every unit
    checkpointed, the rerun succeeds even when execution itself is broken."""
    out = tmp_path / "run1"
    with Checkpoint(out) as checkpoint:
        first = run_grid("smoke", seed=1, workers=1, checkpoint=checkpoint)
    completed = Checkpoint.load(out)
    total_units = sum(len(rows) for rows in first.values())
    assert len(completed) == total_units

    def boom(unit):
        raise AssertionError(f"resumed run re-executed {unit!r}")

    monkeypatch.setattr(parallel, "execute_unit", boom)
    resumed = run_grid("smoke", seed=1, workers=1, completed=completed)
    assert resumed == first


def test_quarantined_units_are_not_checkpointed_and_retry_on_resume(tmp_path,
                                                                    monkeypatch):
    units = _units()
    out = tmp_path / "run"
    monkeypatch.setenv("REPRO_FAULT_INJECT", "1:raise:always")
    monkeypatch.setenv("REPRO_UNIT_RETRIES", "0")
    with Checkpoint(out) as checkpoint, WorkerPool(1) as pool:
        fingerprints = [unit_fingerprint(unit) for unit in units]

        def on_result(index, unit, payload):
            if payload.get("status") != "failed":
                checkpoint.record(fingerprints[index], "table3", payload)

        rows, _ = pool.map(units, on_result=on_result)
    assert rows[1]["status"] == "failed"
    completed = Checkpoint.load(out)
    # the failed unit is absent from the ledger: a resumed run retries it
    assert set(completed) == {fingerprints[0], fingerprints[2]}
    monkeypatch.delenv("REPRO_FAULT_INJECT")
    retried, _ = WorkerPool(1).map([units[1]])
    assert retried[0].get("status") != "failed"


# -- grid-level integration ---------------------------------------------------

@needs_fork
def test_grid_with_quarantined_cell_matches_serial_on_survivors(monkeypatch):
    """A 2-worker grid with one injected kill (recovered) and one poisoned
    cell (quarantined) still produces the serial rows for every survivor.

    One run_grid call dispatches parts in body order (figure5, table2,
    table3), so global unit indexes 0-1 are the figure5 bars.  Index 0
    (fasta@k=0.25) is killed once and recovers; index 1 (fasta@k=1.0)
    raises on every attempt and is quarantined.
    """
    serial = run_grid("smoke", seed=1, workers=1)
    monkeypatch.setenv("REPRO_FAULT_INJECT", "0:kill,1:raise:always")
    meta = {}
    faulty = run_grid("smoke", seed=1, workers=2, meta=meta)
    assert meta["faults"]["failed_units"] == 1
    assert meta["faults"]["respawns"] >= 1

    assert faulty["table3"] == serial["table3"]
    failed = [row for row in faulty["figure5"] if row.get("status") == "failed"]
    assert len(failed) == 1
    assert failed[0]["benchmark"] == "fasta" and failed[0]["k"] == 1.0
    assert _ok_rows(faulty["figure5"]) == \
        [row for row in serial["figure5"] if row["k"] != 1.0]
    # table2 was untouched by the faults: identical up to wall-clock
    strip = lambda rows: [  # noqa: E731
        {k: v for k, v in row.items() if k != "average_time"} for row in rows]
    assert strip(faulty["table2"]) == strip(serial["table2"])


def test_write_artifacts_excludes_quarantined_rows_from_aggregates(tmp_path):
    table2 = [
        {"configuration": "NATIVE", "secrets_found": 1, "functions": 1,
         "full_coverage": 0, "average_time": 0.1, "executions": 5,
         "instructions": 100, "branch_restores": 0},
        quarantine_row(_units()[0], "InjectedFault: boom"),
    ]
    figure5 = [
        {"benchmark": "fasta", "k": 0.25, "slowdown_vs_baseline": 1.5},
        {"status": "failed", "error": "x", "part": "figure5",
         "benchmark": "fasta", "k": 1.0},
    ]
    out = write_artifacts({"table2": table2, "figure5": figure5},
                          tmp_path / "run", "smoke", elapsed=1.0,
                          faults={"failed_units": 2, "retries": 4,
                                  "respawns": 1, "timeouts": 0})
    summary = json.loads((out / "summary.json").read_text())
    assert summary["faults"]["failed_units"] == 2
    assert summary["attack_engine"]["executions"] == 5
    assert list(summary["table2_configs"]) == ["NATIVE"]
    assert list(summary["figure5_overheads"]) == ["fasta@k0.25"]
    # the quarantined rows themselves are preserved in the artifacts
    assert json.loads((out / "table2.json").read_text())[1]["status"] == "failed"
    # legacy summaries (no faults recorded) default to zero counters
    out = write_artifacts({"table2": table2[:1]}, tmp_path / "old", "smoke",
                          elapsed=1.0)
    summary = json.loads((out / "summary.json").read_text())
    assert summary["faults"] == {"failed_units": 0, "retries": 0,
                                 "respawns": 0, "timeouts": 0}


def test_compare_flags_runs_with_quarantined_cells():
    clean = {"table2_configs": {"NATIVE": {
        "secret_rate": 1.0, "coverage_rate": 1.0, "average_time": 0.1}},
        "faults": {"failed_units": 0, "retries": 0, "respawns": 0,
                   "timeouts": 0}}
    partial = {"table2_configs": {"NATIVE": {
        "secret_rate": 1.0, "coverage_rate": 1.0, "average_time": 0.1}},
        "faults": {"failed_units": 2, "retries": 6, "respawns": 2,
                   "timeouts": 1}}
    lines, shifted = compare_summaries(clean, partial)
    assert any("warning: new run has 2 quarantined cell(s)" in line
               for line in lines)
    assert not shifted  # a warning, not a threshold alarm
    lines, _ = compare_summaries(partial, clean)
    assert any("warning: old run has 2 quarantined cell(s)" in line
               for line in lines)
    lines, _ = compare_summaries(clean, clean)
    assert not any("quarantined" in line for line in lines)
