"""Service journal: crash-safe ledger semantics and resume behaviour."""

import json

from repro.service.core import AttackService
from repro.service.journal import Journal
from repro.service.requests import AttackRequest, request_fingerprint


def _request(request_id, **overrides):
    overrides.setdefault("configuration", "NATIVE")
    return AttackRequest(id=request_id, **overrides)


def test_journal_roundtrip_and_missing_file(tmp_path):
    with Journal(tmp_path) as journal:
        journal.record("fp1", {"id": "a", "status": "done"})
        journal.record("fp2", {"id": "b", "status": "done"})
    assert Journal.load(tmp_path) == {
        "fp1": {"id": "a", "status": "done"},
        "fp2": {"id": "b", "status": "done"},
    }
    assert Journal.load(tmp_path / "nowhere") == {}


def test_journal_tolerates_torn_and_corrupt_lines(tmp_path):
    with Journal(tmp_path) as journal:
        journal.record("fp1", {"id": "a"})
    # a service killed mid-write leaves a torn final line plus line noise
    path = tmp_path / Journal.FILENAME
    path.write_text(path.read_text() + "not json\n" + '{"fingerprint": "fp2"')
    assert Journal.load(tmp_path) == {"fp1": {"id": "a"}}
    # reopening repairs the torn line: the next record starts fresh and
    # both the old and the new entry survive
    with Journal(tmp_path) as journal:
        journal.record("fp3", {"id": "c"})
    assert set(Journal.load(tmp_path)) == {"fp1", "fp3"}


def test_journal_append_never_truncates(tmp_path):
    with Journal(tmp_path) as journal:
        journal.record("fp1", {"id": "a"})
    with Journal(tmp_path) as journal:
        journal.record("fp2", {"id": "b"})
    lines = (tmp_path / Journal.FILENAME).read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["fingerprint"] == "fp1"


def test_restarted_service_reruns_exactly_the_unfinished_requests(tmp_path,
                                                                  monkeypatch):
    """The resume contract: after a mid-batch kill, a restarted service
    re-emits journaled rows verbatim and re-runs only what never finished."""
    from repro.service import core as service_core

    executed = []

    def fake_execute(request):
        executed.append(request.id)
        return {"id": request.id, "status": "done", "echo": request.seed}

    monkeypatch.setattr(service_core, "execute_request", fake_execute)
    requests = [_request("a", seed=1), _request("b", seed=2),
                _request("c", seed=3)]

    with AttackService(tmp_path, workers=1) as service:
        for request in requests[:2]:
            service.submit(request)
        first = service.drain()
    assert executed == ["a", "b"]
    assert all(row["status"] == "done" for row in first)

    # simulate the kill arriving mid-write of b's record: torn final line
    path = tmp_path / Journal.FILENAME
    content = path.read_text()
    path.write_text(content[:-10])

    executed.clear()
    with AttackService(tmp_path, workers=1) as service:
        rows = []
        for request in requests:
            rows.extend(service.submit(request))
        rows.extend(service.drain())
        stats = service.stats
    # a's record survived intact -> resumed; b's record was torn -> re-run;
    # c never ran -> run.  Exactly the unfinished requests execute.
    assert executed == ["b", "c"]
    assert stats.resumed == 1
    assert stats.completed == 2
    assert {row["id"] for row in rows} == {"a", "b", "c"}
    assert all(row["status"] == "done" for row in rows)
    # the repaired journal now holds all three
    assert len(Journal.load(tmp_path)) == 3


def test_quarantined_requests_are_not_journaled_and_retry_on_restart(
        tmp_path, monkeypatch):
    from repro.service import core as service_core

    calls = {"n": 0}

    def flaky(request):
        calls["n"] += 1
        if calls["n"] <= 2:
            raise RuntimeError("transient fault")
        return {"id": request.id, "status": "done"}

    monkeypatch.setattr(service_core, "execute_request", flaky)
    request = _request("flaky")
    with AttackService(tmp_path, workers=1, retries=1, backoff=0.0) as service:
        service.submit(request)
        rows = service.drain()
    assert rows[0]["status"] == "quarantined"
    assert "transient fault" in rows[0]["error"]
    assert Journal.load(tmp_path) == {}
    # the fault was transient: a restarted service retries and succeeds
    with AttackService(tmp_path, workers=1, retries=1, backoff=0.0) as service:
        service.submit(request)
        rows = service.drain()
    assert rows[0]["status"] == "done"
    assert request_fingerprint(request) in Journal.load(tmp_path)
