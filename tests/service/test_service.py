"""Attack service: admission, retry/backoff, degradation, byte-identity."""

import json
import time

import pytest

from repro.service import core as service_core
from repro.service import requests as service_requests
from repro.service.__main__ import main as service_main
from repro.service.core import (AttackService, service_backoff,
                                service_breaker, service_queue_limit,
                                service_timeout, service_workers)
from repro.service.journal import Journal
from repro.service.requests import (AttackRequest, execute_request,
                                    parse_request, request_fingerprint)
from repro.evaluation.parallel import fork_available

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="fork start method required")


def _request(request_id, **overrides):
    """A cheap real request: NATIVE (no obfuscation) runs in milliseconds."""
    overrides.setdefault("configuration", "NATIVE")
    return AttackRequest(id=request_id, **overrides)


def _fake_executor(monkeypatch, rows=None):
    """Route both the inline path and the pool registry to a cheap stub."""
    rows = [] if rows is None else rows

    def fake_execute(request):
        row = {"id": request.id, "status": "done", "seed": request.seed}
        rows.append(row)
        return row

    # core binds execute_request at import; the pool registry late-binds
    # through requests.execute_request — patch both so every mode is stubbed
    monkeypatch.setattr(service_core, "execute_request", fake_execute)
    monkeypatch.setattr(service_requests, "execute_request", fake_execute)
    return rows


# -- admission: parsing and validation ----------------------------------------

def test_parse_request_accepts_defaults_and_normalises_id():
    request = parse_request({"id": 7})
    assert request.id == "7"
    assert request.configuration == "ROP1.00"
    assert request.engine == "dse"
    assert request.effective_attack_seed == request.seed
    assert parse_request({"id": "a", "attack_seed": 9}) \
        .effective_attack_seed == 9


@pytest.mark.parametrize("obj, needle", [
    ([1, 2], "must be a JSON object"),
    ({"id": "a", "bogus": 1}, "unknown request field"),
    ({}, "missing the required 'id'"),
    ({"id": "a", "seed": "one"}, "field 'seed' must be int"),
    ({"id": "a", "seed": True}, "field 'seed' must be int"),
    ({"id": "a", "structure": "while(true)"}, "unknown structure"),
    ({"id": "a", "input_size": 3}, "input_size must be one of"),
    ({"id": "a", "configuration": "ROP9.99"}, "unknown configuration"),
    ({"id": "a", "engine": "fuzzer"}, "unknown engine"),
    ({"id": "a", "loop_iterations": 0}, "loop_iterations"),
    ({"id": "a", "max_executions": 0}, "budget caps must be positive"),
])
def test_parse_request_rejects_with_the_reason(obj, needle):
    with pytest.raises(ValueError, match=needle):
        parse_request(obj)


def test_request_fingerprint_is_deterministic_and_parameter_sensitive():
    assert request_fingerprint(_request("a")) == \
        request_fingerprint(_request("a"))
    # every axis that changes the attack changes the journal key
    variants = [_request("a"), _request("b"), _request("a", seed=2),
                _request("a", attack_seed=2),
                _request("a", configuration="ROP0.05"),
                _request("a", max_executions=3)]
    assert len({request_fingerprint(v) for v in variants}) == len(variants)


# -- execution: determinism and engine reuse ----------------------------------

def test_execute_request_is_deterministic_across_cached_engine_reuse():
    """The second run reuses the prepared engine through retarget()+reset();
    its row must still be byte-identical to the cold run."""
    request = _request("det", seed=1)
    first = execute_request(request)
    second = execute_request(request)
    assert first == second
    assert first["status"] == "done"
    assert first["secret_found"] is True  # NATIVE: the attack wins easily
    assert "elapsed" not in first and "time" not in first


def test_requests_differing_only_in_attack_seed_share_a_prepared_engine():
    service_requests._ENGINES.clear()
    service_requests._IMAGES.clear()
    row_a = execute_request(_request("a", seed=1, attack_seed=1))
    row_b = execute_request(_request("b", seed=1, attack_seed=2))
    assert len(service_requests._ENGINES) == 1
    assert len(service_requests._IMAGES) == 1
    # same image, same engine object, independent per-request exploration
    assert row_a["symbol"] == row_b["symbol"]
    # and the reuse did not contaminate a re-run of the first request
    assert execute_request(_request("a", seed=1, attack_seed=1)) == row_a


# -- the serial service: terminal states and resume ---------------------------

def test_serial_service_rows_match_one_shot_runs_and_are_journaled(tmp_path):
    requests = [_request("r1", seed=1), _request("r2", seed=2)]
    reference = {request.id: execute_request(request) for request in requests}
    with AttackService(tmp_path, workers=1) as service:
        rows = []
        for request in requests:
            rows.extend(service.submit(request))
        rows.extend(service.drain())
        summary = service.summary()
    assert {row["id"]: row for row in rows} == reference
    assert summary["completed"] == 2 and summary["quarantined"] == 0
    journaled = Journal.load(tmp_path)
    assert set(journaled) == {request_fingerprint(r) for r in requests}


def test_resumed_service_reemits_rows_verbatim_without_rerunning(tmp_path,
                                                                 monkeypatch):
    request = _request("r1")
    with AttackService(tmp_path, workers=1) as service:
        service.submit(request)
        first = service.drain()

    def boom(_request):
        raise AssertionError("resumed service re-ran a journaled request")

    monkeypatch.setattr(service_core, "execute_request", boom)
    with AttackService(tmp_path, workers=1) as service:
        rows = service.submit(request)
        assert service.occupancy == 0
        stats = service.stats
    assert rows == first
    assert stats.resumed == 1 and stats.completed == 0


def test_inline_raise_fault_is_retried_then_succeeds(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT", "0:raise")
    _fake_executor(monkeypatch)
    with AttackService(tmp_path, workers=1, backoff=0.0) as service:
        service.submit(_request("r1"))
        rows = service.drain()
        stats = service.stats
    assert rows == [{"id": "r1", "status": "done", "seed": 1}]
    assert stats.retried == 1 and stats.completed == 1


def test_retry_backoff_is_exponential_and_exhaustion_quarantines(tmp_path,
                                                                 monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT", "0:raise:always")
    _fake_executor(monkeypatch)
    started = time.monotonic()
    with AttackService(tmp_path, workers=1, retries=2,
                       backoff=0.05) as service:
        service.submit(_request("r1"))
        rows = service.drain()
        stats = service.stats
    elapsed = time.monotonic() - started
    assert rows[0]["status"] == "quarantined"
    assert "InjectedFault" in rows[0]["error"]
    assert stats.retried == 2 and stats.quarantined == 1
    # two backoffs at base 0.05: 0.05 + 0.10
    assert elapsed >= 0.14
    assert Journal.load(tmp_path) == {}  # quarantined rows are never journaled


def test_full_queue_sheds_when_asked_and_backpressures_otherwise(tmp_path,
                                                                 monkeypatch):
    _fake_executor(monkeypatch)
    with AttackService(tmp_path, workers=1, queue_limit=1) as service:
        assert service.submit(_request("r1")) == []
        shed = service.submit(_request("r2"), shed_when_full=True)
        assert shed == [{"id": "r2", "status": "shed",
                         "reason": "service queue full "
                                   "(REPRO_SERVICE_QUEUE=1)"}]
        # without shedding, admission blocks until a slot frees: the rows
        # completed along the way come back with the call
        rows = service.submit(_request("r3"))
        assert [row["id"] for row in rows] == ["r1"]
        rows = service.drain()
        assert [row["id"] for row in rows] == ["r3"]
        stats = service.stats
    assert stats.shed == 1 and stats.completed == 2


def test_reject_counts_and_echoes_the_reason(tmp_path):
    with AttackService(tmp_path, workers=1) as service:
        row = service.reject("bad", "field 'seed' must be int, got str")
        assert row["status"] == "rejected"
        assert service.stats.rejected == 1


# -- the pooled service: differential fault recovery --------------------------

@needs_fork
def test_pooled_service_under_faults_matches_serial_byte_for_byte(tmp_path,
                                                                  monkeypatch):
    """The acceptance property: a batch served across workers under
    kill/exit0/hang/raise faults produces done rows byte-identical to
    one-shot serial runs, with every request terminal."""
    requests = [_request(f"r{i}", seed=i + 1) for i in range(4)]
    reference = {request.id: execute_request(request) for request in requests}

    monkeypatch.setenv("REPRO_FAULT_INJECT", "0:kill,1:exit0,2:hang,3:raise")
    with AttackService(tmp_path / "served", workers=2, deadline=5.0,
                       backoff=0.0) as service:
        rows = []
        for request in requests:
            rows.extend(service.submit(request))
        rows.extend(service.drain())
        stats = service.stats
    assert {row["id"]: row for row in rows} == reference
    assert stats.completed == 4 and stats.quarantined == 0
    assert stats.retried == 4          # every fault cost exactly one retry
    assert stats.timeouts == 1         # the hang, killed by the deadline
    assert stats.respawns >= 3         # kill, exit0, and the hang's killer
    assert stats.degraded == 0
    journaled = Journal.load(tmp_path / "served")
    assert set(journaled) == {request_fingerprint(r) for r in requests}


@needs_fork
def test_circuit_breaker_degrades_to_inline_and_still_completes(tmp_path,
                                                                monkeypatch):
    """A request whose worker dies on every attempt would burn respawns
    forever; past REPRO_SERVICE_BREAKER the service abandons the pool and
    finishes the batch in-process, where kill faults cannot reach it."""
    monkeypatch.setenv("REPRO_FAULT_INJECT", "0:kill:always")
    _fake_executor(monkeypatch)
    requests = [_request(f"r{i}", seed=i + 1) for i in range(3)]
    with AttackService(tmp_path, workers=2, retries=10, backoff=0.0,
                       breaker=2) as service:
        rows = []
        for request in requests:
            rows.extend(service.submit(request))
        rows.extend(service.drain())
        stats = service.stats
        assert service.degraded
    assert stats.degraded == 1
    assert stats.respawns >= 3         # what tripped the breaker
    assert sorted(row["id"] for row in rows) == ["r0", "r1", "r2"]
    assert all(row["status"] == "done" for row in rows)


@needs_fork
def test_pooled_rows_equal_serial_rows_without_faults(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    requests = [_request(f"r{i}", seed=i + 1) for i in range(3)]
    reference = {request.id: execute_request(request) for request in requests}
    with AttackService(tmp_path, workers=2) as service:
        rows = []
        for request in requests:
            rows.extend(service.submit(request))
        rows.extend(service.drain())
    assert {row["id"]: row for row in rows} == reference


# -- knobs and the CLI --------------------------------------------------------

def test_service_knob_resolution(monkeypatch):
    for name in ("REPRO_SERVICE_WORKERS", "REPRO_SERVICE_QUEUE",
                 "REPRO_SERVICE_TIMEOUT", "REPRO_SERVICE_BACKOFF",
                 "REPRO_SERVICE_BREAKER", "REPRO_UNIT_TIMEOUT"):
        monkeypatch.delenv(name, raising=False)
    assert service_workers() == 1
    assert service_queue_limit() == 64
    assert service_timeout() is None
    assert service_backoff() == 0.1
    assert service_breaker() == 8
    monkeypatch.setenv("REPRO_SERVICE_WORKERS", "4")
    monkeypatch.setenv("REPRO_SERVICE_QUEUE", "0")
    monkeypatch.setenv("REPRO_SERVICE_BACKOFF", "junk")
    assert service_workers() == 4
    assert service_queue_limit() == 1   # clamped to a usable bound
    assert service_backoff() == 0.1
    # the service deadline falls back to the shared unit deadline
    monkeypatch.setenv("REPRO_UNIT_TIMEOUT", "7")
    assert service_timeout() == 7.0
    monkeypatch.setenv("REPRO_SERVICE_TIMEOUT", "3")
    assert service_timeout() == 3.0
    monkeypatch.setenv("REPRO_SERVICE_TIMEOUT", "0")
    assert service_timeout() is None    # explicit 0 disables, no fallback


def test_cli_drains_a_batch_and_reports_rejects(tmp_path, capsys,
                                                monkeypatch):
    _fake_executor(monkeypatch)
    batch = tmp_path / "requests.jsonl"
    batch.write_text("\n".join([
        "# comment lines and blanks are skipped",
        "",
        json.dumps({"id": "good", "configuration": "NATIVE"}),
        "this is not json",
        json.dumps({"id": "bad", "bogus": 1}),
    ]) + "\n")
    code = service_main([str(batch), "--dir", str(tmp_path / "out")])
    assert code == 0
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines()]
    summary = lines[-1]["summary"]
    assert summary["completed"] == 1
    assert summary["rejected"] == 2
    by_status = {}
    for row in lines[:-1]:
        by_status.setdefault(row["status"], []).append(row)
    assert [row["id"] for row in by_status["done"]] == ["good"]
    assert len(by_status["rejected"]) == 2
    assert any("invalid JSON" in row["reason"]
               for row in by_status["rejected"])
    assert any("unknown request field" in row["reason"]
               for row in by_status["rejected"])


def test_cli_exit_code_reflects_quarantine(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_INJECT", "0:raise:always")
    monkeypatch.setenv("REPRO_UNIT_RETRIES", "0")
    monkeypatch.setenv("REPRO_SERVICE_BACKOFF", "0")
    _fake_executor(monkeypatch)
    batch = tmp_path / "requests.jsonl"
    batch.write_text(json.dumps({"id": "doomed",
                                 "configuration": "NATIVE"}) + "\n")
    code = service_main([str(batch), "--dir", str(tmp_path / "out")])
    assert code == 1
    lines = [json.loads(line)
             for line in capsys.readouterr().out.splitlines()]
    assert lines[0]["status"] == "quarantined"
    assert lines[-1]["summary"]["quarantined"] == 1
