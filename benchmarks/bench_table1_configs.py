"""Regenerates Table I / Table IV: the configuration and workload taxonomies."""

from repro.evaluation import TABLE2_CONFIGURATIONS, render_table
from repro.obfuscation.configs import ropk
from repro.workloads.randomfuns import CONTROL_STRUCTURES, generate_table2_suite


def test_table1_configuration_registry(benchmark):
    def run():
        return list(TABLE2_CONFIGURATIONS)

    configurations = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ("name", "kind", "k", "VM layers", "implicit"),
        [(c.name, c.kind, c.rop_k, c.vm_layers, c.vm_implicit) for c in configurations],
        title="Table I (configuration taxonomy)"))
    names = {c.name for c in configurations}
    assert {"NATIVE", "ROP0.05", "ROP1.00", "2VM", "3VM-IMPall"} <= names
    assert ropk(0.25).name == "ROP0.25"


def test_table4_control_structures(benchmark):
    def run():
        return generate_table2_suite()

    suite = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ("structure", "depth", "ifs", "loops"),
        CONTROL_STRUCTURES,
        title="Table IV (RandomFuns control structures)"))
    assert len(suite) == 72
    assert len(CONTROL_STRUCTURES) == 6
