"""Regenerates §VII-C3: the base64 case study (resilience and slowdown)."""

from repro.attacks import AttackBudget
from repro.evaluation import render_table, run_case_study
from repro.evaluation.case_study import DEFAULT_CONFIGURATIONS


def test_section7c_base64_case_study(benchmark, scale):
    budget = AttackBudget(seconds=scale["attack_seconds"],
                          max_executions=scale["attack_executions"])
    configurations = DEFAULT_CONFIGURATIONS if scale["vm_configs"] is None \
        else [c for c in DEFAULT_CONFIGURATIONS if c.name in
              ("NATIVE", "ROP0.00", "ROP1.00")]

    def run():
        return run_case_study(configurations=configurations, budget=budget)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ("configuration", "secret recovered", "attack time", "run instructions"),
        [(r.configuration, r.secret_recovered, f"{r.attack_time:.2f}s",
          r.execution_instructions) for r in results],
        title="§VII-C3 base64 case study"))
    native = next(r for r in results if r.configuration == "NATIVE")
    rop = [r for r in results if r.configuration.startswith("ROP")]
    # ROP encoding costs run time but raises the bar for the attack
    assert all(r.execution_instructions > native.execution_instructions for r in rop)
    assert sum(r.secret_recovered for r in rop) <= int(native.secret_recovered) * len(rop)
