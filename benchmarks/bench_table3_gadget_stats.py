"""Regenerates Table III: gadget statistics of the clbg suite across ROPk."""

from repro.evaluation import render_table, run_table3


def test_table3_gadget_statistics(benchmark, scale):
    benchmarks = scale["clbg_benchmarks"]
    k_values = (0.0, 0.25, 1.0) if benchmarks is not None else None

    def run():
        return run_table3(benchmarks=benchmarks, k_values=k_values)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ("benchmark", "k", "N", "A", "B", "C"),
        [row.as_cells() for row in rows],
        title="Table III (gadget statistics)"))
    # the paper's trend: A, B and C grow with k (more P3 instances, more gadgets)
    by_benchmark = {}
    for row in rows:
        by_benchmark.setdefault(row.benchmark, []).append(row)
    for series in by_benchmark.values():
        series.sort(key=lambda row: row.k)
        assert series[-1].total_gadgets > series[0].total_gadgets
        assert series[-1].gadgets_per_point > series[0].gadgets_per_point
