"""Regenerates the §VII-A efficacy study (per-technique attack surfaces)."""

from repro.evaluation import render_table, run_efficacy_study


def test_section7a_efficacy(benchmark, scale):
    def run():
        return run_efficacy_study(budget_seconds=min(3.0, scale["attack_seconds"] * 1.5))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(("measurement", "value"), [
        ("SE paths on native", result.se_native_paths),
        ("SE paths on ROP-P1", result.se_rop_p1_paths),
        ("DSE paths on native", result.dse_native_paths),
        ("DSE paths on ROP k=1", result.dse_rop_p3_paths),
        ("DSE instructions native", result.dse_native_instructions),
        ("DSE instructions ROP k=1", result.dse_rop_p3_instructions),
        ("TDS tainted branches (plain ROP)", result.tds_plain_tainted_branches),
        ("TDS tainted branches (ROP k=1)", result.tds_p3_tainted_branches),
        ("ROPMEMU valid flips (plain)", result.ropmemu_valid_flips_plain),
        ("ROPMEMU valid flips (P2)", result.ropmemu_valid_flips_p2),
        ("Dissector slot recovery (plain)", f"{result.dissector_plain_fraction:.2f}"),
        ("Dissector slot recovery (confused)", f"{result.dissector_confused_fraction:.2f}"),
        ("Gadget-guessing candidates", result.guessed_gadgets),
    ], title="§VII-A efficacy study"))
    # qualitative expectations of §VII-A
    assert result.dse_rop_p3_instructions > result.dse_native_instructions
    assert result.tds_p3_tainted_branches >= result.tds_plain_tainted_branches
    assert result.dissector_confused_fraction <= result.dissector_plain_fraction
