"""Regenerates Table II (code-coverage column): G2 attacks across configurations."""

from repro.attacks import AttackBudget
from repro.evaluation import TABLE2_CONFIGURATIONS, render_table, run_table2
from repro.workloads.randomfuns import generate_table2_suite


def _configurations(scale):
    names = scale["vm_configs"] or [c.name for c in TABLE2_CONFIGURATIONS]
    subset = [c for c in TABLE2_CONFIGURATIONS if c.name in names]
    # the coverage goal is the expensive half of Table II; keep the scaled run
    # to the native/ROP ends of the spectrum unless full scale was requested
    return subset if scale["vm_configs"] is None else subset[:4]


def test_table2_code_coverage(benchmark, scale):
    specs = generate_table2_suite(point_test=False, seeds=scale["seeds"],
                                  input_sizes=scale["input_sizes"],
                                  structures=scale["structures"])
    budget = AttackBudget(seconds=scale["attack_seconds"],
                          max_executions=scale["attack_executions"])

    def run():
        return run_table2(configurations=_configurations(scale), specs=specs,
                          budget=budget, include_coverage=True)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ("configuration", "secrets found", "avg time", "100% coverage"),
        [row.as_cells() for row in rows],
        title="Table II (code coverage, scaled)"))
    native = next(row for row in rows if row.configuration == "NATIVE")
    rop = [row for row in rows if row.configuration.startswith("ROP")]
    assert native.full_coverage >= max(row.full_coverage for row in rop)
