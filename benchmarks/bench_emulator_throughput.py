"""Microbenchmark: emulator steady-state throughput and fork/snapshot rates.

This is the perf gate for the fast execution core (decode cache, dispatch
table, trace-fused superinstructions, the exec-compiled trace tier, memory
fast paths, copy-on-write forking).  It drives a fully ROP-obfuscated
workload (``fasta`` under ``ROP1.00`` — every instruction dispatched through
ret-terminated chains, the worst case the paper measures in Figure 5) and
reports:

* **instructions/sec** of the hook-free interpreter loop in five
  configurations: the default three-tier pipeline with cross-trace
  superblocks, superblock linking off (``REPRO_TRACE_SUPERBLOCK=0``), the
  closure tier only (``REPRO_TRACE_COMPILE=0``), single-step dispatch
  (``REPRO_TRACE_CACHE=0``) and fully uncached (``REPRO_DECODE_CACHE=0``
  too), plus the JIT pipeline counters of the default run (traces compiled,
  compiled-trace hit rate, native-coverage share of compiled instructions,
  superblocks linked and superblock dispatch counts),
* **forks/sec** of :meth:`repro.memory.Memory.snapshot`-based program
  forking versus the deep ``load_image`` path the attack engines used to
  take per execution,
* **snapshots/sec** of the full-context :meth:`repro.cpu.Emulator.snapshot`
  / :meth:`~repro.cpu.Emulator.restore` pair the attack engines rewind with,
* **per-engine executions/sec** of the three snapshot-driven attack engines
  (DSE, TDS, ROPMEMU) against their legacy fork-per-execution path, measured
  on a minimal function so the per-execution overhead dominates.  TDS and
  ROPMEMU must stay >= 3x over the legacy path (same-machine ratio); a
  ROP-chain workload is also reported (un-gated — its longer hooked runs
  dilute the per-execution win),
* **grid cells/sec** of the sharded evaluation layer
  (:mod:`repro.evaluation.parallel`): smoke-shaped Table II attack cells
  dispatched through the fork-based worker pool at 1 vs 4 workers.  On
  hosts with >= 4 CPUs (CI runners) the 4-worker rate must stay >= 2.5x the
  1-worker rate; on smaller hosts the numbers are recorded but not gated.

Results are persisted to ``BENCH_emulator.json`` at the repo root so future
PRs see the trajectory.  The committed file doubles as the regression
baseline: a run whose throughput drops more than 20% below it fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_emulator_throughput.py   # or
    PYTHONPATH=src python -m pytest benchmarks/bench_emulator_throughput.py -q

Knobs:

* ``REPRO_BENCH_UPDATE=1`` — rewrite the committed baseline (current
  numbers become the new gate) instead of checking against it.
* ``REPRO_BENCH_GATE=0``   — measure and persist but skip the regression
  assertions (useful on machines much slower than the baseline host).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import knobs

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_emulator.json"

#: Maximum tolerated interpreter-throughput regression before the gate fails.
REGRESSION_TOLERANCE = 0.20

#: The decode/trace caches and the compiled tier are the largest wins; flag
#: runs where the environment has turned any off so the report stays honest.
_CACHE_ENABLED = knobs.enabled("REPRO_DECODE_CACHE")
_TRACE_ENABLED = knobs.enabled("REPRO_TRACE_CACHE")
_COMPILE_ENABLED = knobs.enabled("REPRO_TRACE_COMPILE")
_SUPERBLOCK_ENABLED = knobs.enabled("REPRO_TRACE_SUPERBLOCK")

#: Compiled-tier throughput must stay at least this multiple of the closure
#: tier on the same machine (the PR 4 tentpole gate).
COMPILE_SPEEDUP_FLOOR = 1.5

#: Sharded grid evaluation must process smoke-shaped cells at least this
#: multiple of the 1-worker rate when run with 4 workers (the PR 6 tentpole
#: gate; only enforced on hosts with >= 4 CPUs — CI's runners qualify).
GRID_PARALLEL_SPEEDUP_FLOOR = 2.5
GRID_PARALLEL_WORKERS = 4


def measure_calibration(rounds=3):
    """Time a fixed pure-Python integer workload on this machine.

    The committed baseline stores the baseline host's calibration time, so
    the regression gate can scale its absolute instructions/sec numbers by
    the ratio of interpreter speeds — a 20% *code* regression still fails
    while a slower CI runner does not.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        value = 0
        for i in range(2_000_000):
            value = (value + i) & 0xFFFFFFFFFFFFFFFF
        best = min(best, time.perf_counter() - start)
    return best


def _build_workload():
    """Compile the ROP-chain workload: ``fasta`` fully obfuscated (k=1.00)."""
    from repro.binary import load_image
    from repro.obfuscation.configs import apply_configuration, ropk
    from repro.workloads.clbg import build_clbg_program

    program, entry, argument, names = build_clbg_program("fasta")
    image = apply_configuration(program, names, ropk(1.00), seed=1)
    return load_image(image), entry, argument


def measure_throughput(pristine, entry, argument, rounds=3, decode_cache=None,
                       trace_cache=None, trace_compile=None,
                       trace_superblock=None):
    """Run the workload ``rounds`` times; return best-of instructions/sec.

    Each round builds a fresh emulator, so per-round numbers include the
    warm-up cost of the requested tier (decode, trace fusion and — for the
    compiled configuration — ``compile()`` of every hot trace plus
    superblock linking).
    """
    from repro.cpu.emulator import Emulator
    from repro.cpu.host import EXIT_ADDRESS, HostEnvironment
    from repro.isa.registers import ARG_REGISTERS, Register

    best_ips = 0.0
    steps = 0
    jit = None
    for _ in range(rounds):
        program = pristine.fork()
        emulator = Emulator(program.memory, host=HostEnvironment(),
                            max_steps=5_000_000, decode_cache=decode_cache,
                            trace_cache=trace_cache,
                            trace_compile=trace_compile,
                            trace_superblock=trace_superblock)
        emulator.state.write_reg(Register.RSP, program.stack_top)
        emulator.state.write_reg(Register.RBP, program.stack_top)
        emulator.state.write_reg(ARG_REGISTERS[0], argument)
        emulator.push(EXIT_ADDRESS)
        emulator.state.rip = program.image.function(entry).address
        start = time.perf_counter()
        emulator.run()
        elapsed = time.perf_counter() - start
        steps = emulator.steps
        jit = emulator.jit_stats
        best_ips = max(best_ips, steps / elapsed)
    report = {"instructions": steps, "instructions_per_sec": round(best_ips)}
    if trace_compile:
        report["jit"] = {
            "traces_built": jit.traces_built,
            "traces_compiled": jit.traces_compiled,
            "compile_declined": jit.compile_declined,
            "compiled_runs": jit.compiled_runs,
            "closure_runs": jit.closure_runs,
            "compiled_hit_rate": round(jit.compiled_hit_rate, 4),
            "native_steps": jit.native_steps,
            "generic_steps": jit.generic_steps,
            "native_coverage": round(jit.native_coverage, 4),
            "superblocks_built": jit.superblocks_built,
            "superblock_runs": jit.superblock_runs,
        }
    return report


def measure_fork_rate(pristine, image, count=300):
    """Compare COW forking against the deep ``load_image`` path."""
    from repro.binary import load_image

    # COW path: fork + one stack store (forces the detach a real run pays)
    start = time.perf_counter()
    for _ in range(count):
        fork = pristine.fork()
        fork.memory.write_int(fork.stack_top - 8, 1, 8)
    cow_elapsed = time.perf_counter() - start

    deep_count = max(count // 10, 10)
    start = time.perf_counter()
    for _ in range(deep_count):
        loaded = load_image(image)
        loaded.memory.write_int(loaded.stack_top - 8, 1, 8)
    deep_elapsed = time.perf_counter() - start

    forks_per_sec = count / cow_elapsed
    deep_per_sec = deep_count / deep_elapsed
    return {
        "forks_per_sec": round(forks_per_sec),
        "deep_loads_per_sec": round(deep_per_sec),
        "fork_speedup": round(forks_per_sec / deep_per_sec, 2),
    }


def measure_snapshot_rate(pristine, entry, argument, count=2000):
    """Measure full-context ``Emulator.snapshot()``/``restore()`` cycles.

    This is the DSE rewind pattern: snapshot a prepared emulator once, then
    restore per explored path.  Each cycle includes a register write and a
    stack store so the COW detach a real path pays is part of the cost.
    """
    from repro.cpu.emulator import Emulator
    from repro.cpu.host import EXIT_ADDRESS, HostEnvironment
    from repro.isa.registers import ARG_REGISTERS, Register

    program = pristine.fork()
    emulator = Emulator(program.memory, host=HostEnvironment(),
                        max_steps=5_000_000)
    emulator.state.write_reg(Register.RSP, program.stack_top)
    emulator.state.write_reg(Register.RBP, program.stack_top)
    emulator.state.write_reg(ARG_REGISTERS[0], argument)
    emulator.push(EXIT_ADDRESS)
    emulator.state.rip = program.image.function(entry).address
    snap = emulator.snapshot()

    start = time.perf_counter()
    for index in range(count):
        emulator.restore(snap)
        emulator.state.write_reg(ARG_REGISTERS[0], index)
        emulator.memory.write_int(program.stack_top - 16, index, 8)
    elapsed = time.perf_counter() - start
    return {"snapshot_restores_per_sec": round(count / elapsed)}


def _build_engine_workloads():
    """Small attack targets: a minimal function and a ROP-plain variant.

    The minimal function isolates the per-execution overhead the snapshot
    engines eliminate (fork + emulator construction + re-decode); the
    ROP-obfuscated license check is the realistic-context datapoint.
    """
    from repro.compiler import compile_program
    from repro.core import RopConfig, rop_obfuscate
    from repro.lang import Assign, BinOp, Const, Function, If, Probe, Program, Return, Var

    tiny = compile_program(Program([Function("f", ["x"], [
        Return(BinOp("^", BinOp("*", Var("x"), Const(13)), Const(0x27))),
    ])]))
    check = Program([Function("f", ["x"], [
        Probe(1),
        Assign("h", BinOp("^", BinOp("*", Var("x"), Const(13)), Const(0x27))),
        If(BinOp("==", BinOp("&", Var("h"), Const(0xFF)), Const(0x5A)),
           [Probe(2), Return(Const(1))],
           [Probe(3), Return(Const(0))]),
    ])])
    ropped, _ = rop_obfuscate(compile_program(check), ["f"], RopConfig.plain())
    return tiny, ropped


def _execution_rate(run_one, count):
    """Executions/sec of ``run_one`` over one timed window of ``count`` calls."""
    run_one(0)  # warm caches and snapshots outside the timed window
    start = time.perf_counter()
    for index in range(count):
        run_one(index)
    return count / (time.perf_counter() - start)


def measure_engine_rates(tiny_count=500, rop_count=150):
    """Per-engine executions/sec: snapshot rewinding vs the legacy path."""
    from repro.attacks.dse import DseEngine, InputSpec
    from repro.attacks.ropaware import RopMemuExplorer
    from repro.attacks.tds import TaintDrivenSimplifier

    tiny, ropped = _build_engine_workloads()
    report = {}

    def measure(name, image, count, factory, rounds=3):
        # interleave the two legs so CPU-steal noise on a shared runner hits
        # both, and take the best window of each
        snap_one = factory(image, True)
        legacy_one = factory(image, False)
        snap_rate = legacy_rate = 0.0
        for _ in range(rounds):
            snap_rate = max(snap_rate, _execution_rate(snap_one, count))
            legacy_rate = max(legacy_rate, _execution_rate(legacy_one, count))
        return {
            f"{name}_executions_per_sec": round(snap_rate),
            f"{name}_legacy_executions_per_sec": round(legacy_rate),
            f"{name}_speedup": round(snap_rate / legacy_rate, 2),
        }

    def tds(image, snapshots):
        engine = TaintDrivenSimplifier(image, "f", use_snapshots=snapshots)
        return lambda index: engine.record([index & 0xFF])

    def memu(image, snapshots):
        engine = RopMemuExplorer(image, "f", use_snapshots=snapshots)
        return lambda index: engine._run([index & 0xFF])

    def dse(image, snapshots):
        engine = DseEngine(image, "f", InputSpec(argument_sizes=[1]),
                           use_snapshots=snapshots)
        return lambda index: engine.execute({"arg0": index & 0xFF})

    for name, factory in (("tds", tds), ("ropmemu", memu), ("dse", dse)):
        report.update(measure(name, tiny, tiny_count, factory))
    report.update({f"rop_{key}": value for key, value in
                   measure("tds", ropped, rop_count, tds).items()})
    return report


def measure_grid_parallel(workers=GRID_PARALLEL_WORKERS, cell_seeds=8):
    """Sharded grid evaluation: smoke-shaped Table II cells/sec, 1 vs N workers.

    The cells are the smoke slice's ``ROP1.00`` attack cell expanded across
    RandomFuns seeds, so the pool has enough comparable-cost units to
    balance (the real smoke slice has too few cells to show scaling).  Every
    budget in the cell is a deterministic cap, so both legs do identical
    work and the ratio is a pure scheduling measurement.
    """
    from repro.attacks import AttackBudget
    from repro.evaluation.configurations import ropk
    from repro.evaluation.parallel import WorkerPool, fork_available, table2_units
    from repro.workloads.randomfuns import RandomFunSpec

    specs = [RandomFunSpec(structure="if(bb4,bb4)", input_size=1, seed=s)
             for s in range(1, cell_seeds + 1)]
    budget = AttackBudget(seconds=60.0, max_executions=2,
                          max_instructions_per_run=80_000,
                          max_solver_queries=16)
    units = table2_units([ropk(1.00)], specs, budget,
                         include_coverage=False, seed=1)

    def cells_per_sec(worker_count):
        with WorkerPool(worker_count) as pool:
            start = time.perf_counter()
            pool.map(units)
            return len(units) / (time.perf_counter() - start)

    report = {
        "cells": len(units),
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "fork_available": fork_available(),
        "serial_cells_per_sec": round(cells_per_sec(1), 2),
    }
    if fork_available():
        parallel_rate = cells_per_sec(workers)
        report["parallel_cells_per_sec"] = round(parallel_rate, 2)
        report["speedup"] = round(
            parallel_rate / report["serial_cells_per_sec"], 2)
    return report


def run_benchmarks():
    """Measure everything and return the report dict."""
    pristine, entry, argument = _build_workload()
    fusion = (_CACHE_ENABLED and _TRACE_ENABLED) or None
    compiled = (bool(fusion) and _COMPILE_ENABLED) or None
    superblocks = (bool(compiled) and _SUPERBLOCK_ENABLED) or None
    report = {
        "workload": "clbg/fasta under ROP1.00 (seed=1), hook-free run loop",
        "calibration_sec": round(measure_calibration(), 4),
        "throughput": measure_throughput(pristine, entry, argument,
                                         decode_cache=_CACHE_ENABLED or None,
                                         trace_cache=fusion,
                                         trace_compile=compiled,
                                         trace_superblock=superblocks),
        "throughput_superblock_off": measure_throughput(
            pristine, entry, argument, rounds=2,
            decode_cache=_CACHE_ENABLED or None, trace_cache=fusion,
            trace_compile=compiled, trace_superblock=False),
        "throughput_compile_off": measure_throughput(
            pristine, entry, argument, rounds=2,
            decode_cache=_CACHE_ENABLED or None, trace_cache=fusion,
            trace_compile=False),
        "throughput_trace_cache_off": measure_throughput(
            pristine, entry, argument, rounds=2,
            decode_cache=_CACHE_ENABLED or None, trace_cache=False),
        "throughput_decode_cache_off": measure_throughput(
            pristine, entry, argument, rounds=1, decode_cache=False,
            trace_cache=False),
        "forking": measure_fork_rate(pristine, pristine.image),
        "snapshots": measure_snapshot_rate(pristine, entry, argument),
        "engines": measure_engine_rates(),
        "grid_parallel": measure_grid_parallel(),
    }
    return report


#: Every run also writes its raw measurements here (git-ignored by CI), so a
#: failing throughput gate can upload the candidate numbers as an artifact
#: for post-mortem comparison against the committed baseline.
CANDIDATE_PATH = REPO_ROOT / "BENCH_emulator.candidate.json"


def _load_committed():
    if RESULT_PATH.exists():
        try:
            return json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError as exc:
            raise SystemExit(
                f"{RESULT_PATH} is not valid JSON ({exc}); restore it from "
                f"git or regenerate with REPRO_BENCH_UPDATE=1") from exc
    return None


def _persist(report, committed):
    payload = {"schema": 6}
    # the seed measurement is a fixed historical reference; carry it forward
    if committed and "seed" in committed:
        payload["seed"] = committed["seed"]
    payload.update(report)
    payload["speedup_vs_seed"] = _speedups(report, payload.get("seed"))
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _speedups(report, seed):
    if not seed:
        return None
    return {
        "instructions_per_sec": round(
            report["throughput"]["instructions_per_sec"]
            / seed["instructions_per_sec"], 2),
        "forks_per_sec": round(
            report["forking"]["forks_per_sec"] / seed["forks_per_sec"], 2),
    }


def test_emulator_throughput_and_fork_rate():
    report = run_benchmarks()
    committed = _load_committed()
    update = knobs.raw("REPRO_BENCH_UPDATE", "0") == "1"
    gate = knobs.enabled("REPRO_BENCH_GATE") and not update
    CANDIDATE_PATH.write_text(json.dumps(report, indent=2) + "\n")

    ips = report["throughput"]["instructions_per_sec"]
    superblock_off_ips = \
        report["throughput_superblock_off"]["instructions_per_sec"]
    compile_off_ips = report["throughput_compile_off"]["instructions_per_sec"]
    trace_off_ips = report["throughput_trace_cache_off"]["instructions_per_sec"]
    forking = report["forking"]
    snapshots = report["snapshots"]
    engines = report["engines"]
    jit = report["throughput"].get("jit")
    print()
    print(f"interpreter throughput : {ips:>12,} instructions/sec")
    print(f"  superblocks off      : {superblock_off_ips:>12,} instructions/sec")
    print(f"  compiled tier off    : {compile_off_ips:>12,} instructions/sec")
    print(f"  trace cache off      : {trace_off_ips:>12,} instructions/sec")
    print(f"  decode cache off     : "
          f"{report['throughput_decode_cache_off']['instructions_per_sec']:>12,}"
          " instructions/sec")
    if jit:
        print(f"  JIT pipeline         : {jit['traces_compiled']}/"
              f"{jit['traces_built']} traces compiled, "
              f"{jit['compiled_hit_rate']:.1%} compiled-trace hit rate, "
              f"{jit['native_coverage']:.1%} native coverage "
              f"({jit['generic_steps']} generic-handler steps)")
        print(f"  superblocks          : {jit['superblocks_built']} linked, "
              f"{jit['superblock_runs']:,} superblock dispatches")
    print(f"COW fork rate          : {forking['forks_per_sec']:>12,} forks/sec "
          f"({forking['fork_speedup']}x over deep load_image)")
    print(f"emulator snapshot rate : "
          f"{snapshots['snapshot_restores_per_sec']:>12,} restores/sec")
    for name in ("tds", "ropmemu", "dse"):
        print(f"{name.upper():<7} execution rate : "
              f"{engines[f'{name}_executions_per_sec']:>12,} executions/sec "
              f"({engines[f'{name}_speedup']}x over fork-per-execution)")
    print(f"TDS on ROP chain       : "
          f"{engines['rop_tds_executions_per_sec']:>12,} executions/sec "
          f"({engines['rop_tds_speedup']}x over fork-per-execution)")
    grid = report["grid_parallel"]
    if "speedup" in grid:
        print(f"grid sharding          : {grid['serial_cells_per_sec']} -> "
              f"{grid['parallel_cells_per_sec']} cells/sec at "
              f"{grid['workers']} workers ({grid['speedup']}x, "
              f"{grid['cpu_count']} CPUs)")
    else:
        print(f"grid sharding          : {grid['serial_cells_per_sec']} "
              f"cells/sec serial (fork unavailable, parallel leg skipped)")

    caches_on = _CACHE_ENABLED and _TRACE_ENABLED
    if update or committed is None:
        if not (caches_on and _COMPILE_ENABLED and _SUPERBLOCK_ENABLED):
            raise SystemExit(
                "refusing to (re)write the baseline with REPRO_DECODE_CACHE/"
                "REPRO_TRACE_CACHE/REPRO_TRACE_COMPILE/REPRO_TRACE_SUPERBLOCK "
                "disabled: the committed numbers must be the full pipeline "
                "configuration CI gates against")
        payload = _persist(report, committed)
        print(f"baseline updated: {RESULT_PATH}")
        speedups = payload.get("speedup_vs_seed")
        if speedups:
            print(f"speedup vs seed        : {speedups['instructions_per_sec']}x "
                  f"throughput, {speedups['forks_per_sec']}x forking")
        return

    # forking speedup is a same-machine ratio, so it gates unconditionally
    assert forking["fork_speedup"] >= 10.0, (
        f"COW forking only {forking['fork_speedup']}x faster than deep "
        f"load_image (expected >= 10x)")

    # per-engine rewind speedups are same-machine ratios too: snapshot
    # restores must stay >= 3x over the legacy fork-per-execution path
    for name in ("tds", "ropmemu"):
        speedup = engines[f"{name}_speedup"]
        assert speedup >= 3.0, (
            f"{name} snapshot rewinding only {speedup}x over "
            f"fork-per-execution (expected >= 3x)")

    # grid sharding is a same-machine ratio, but only meaningful with real
    # parallel hardware: enforced when the host has >= 4 CPUs (as CI's
    # runners do); measured-but-ungated elsewhere so a laptop run of the
    # bench still records honest numbers
    if "speedup" in grid and grid["cpu_count"] >= GRID_PARALLEL_WORKERS:
        assert grid["speedup"] >= GRID_PARALLEL_SPEEDUP_FLOOR, (
            f"grid sharding only {grid['speedup']}x over 1 worker at "
            f"{grid['workers']} workers (expected >= "
            f"{GRID_PARALLEL_SPEEDUP_FLOOR}x)")
    else:
        print(f"grid sharding gate skipped: "
              f"{grid['cpu_count']} CPU(s) < {GRID_PARALLEL_WORKERS}")

    if caches_on:
        # same-machine ratio: superinstruction fusion must stay a large
        # multiplier over single-step dispatch.  Nominally ~2.1-2.7x; gated
        # at 1.8x because the single-step leg is noisy on shared runners.
        fusion_speedup = compile_off_ips / max(1, trace_off_ips)
        assert fusion_speedup >= 1.8, (
            f"trace fusion only {fusion_speedup:.2f}x over single-step "
            f"dispatch (expected >= 1.8x)")

    if caches_on and _COMPILE_ENABLED:
        # the PR 4 tentpole gate: exec-compiled traces must beat the closure
        # tier by >= 1.5x on the same machine (nominally ~1.7x)
        compile_speedup = ips / max(1, compile_off_ips)
        assert compile_speedup >= COMPILE_SPEEDUP_FLOOR, (
            f"exec-compiled traces only {compile_speedup:.2f}x over the "
            f"closure tier (expected >= {COMPILE_SPEEDUP_FLOOR}x)")
        hit_rate = report["throughput"]["jit"]["compiled_hit_rate"]
        assert hit_rate >= 0.9, (
            f"compiled-trace hit rate only {hit_rate:.1%} on the bench "
            f"workload (expected >= 90%)")
        # the PR 5 tentpole gates: the widened codegen must keep generic-
        # handler round-trips marginal, and superblock linking must engage
        # on the ROP chain workload (its throughput is gated at parity via
        # the absolute regression gate below, not a ratio — the seam saving
        # is within shared-runner noise)
        coverage = report["throughput"]["jit"]["native_coverage"]
        assert coverage >= 0.9, (
            f"native codegen coverage only {coverage:.1%} of compiled "
            f"instructions (expected >= 90%)")
        if _SUPERBLOCK_ENABLED:
            jit_stats = report["throughput"]["jit"]
            assert jit_stats["superblocks_built"] > 0, (
                "no superblocks linked on the ROP chain workload")
            assert jit_stats["superblock_runs"] > 0, (
                "superblock dispatch never engaged on the ROP chain workload")

    if gate and not (caches_on and _COMPILE_ENABLED and _SUPERBLOCK_ENABLED):
        # the committed baseline is the three-tier configuration; measuring
        # with a tier disabled is the A/B debugging mode, not a regression
        print("absolute throughput gate skipped: a cache/compile tier is "
              "disabled")
    elif gate:
        # scale the baseline host's absolute numbers by the ratio of machine
        # speeds, so slow CI runners don't fail without a code regression
        baseline_cal = committed.get("calibration_sec")
        machine_scale = (baseline_cal / report["calibration_sec"]
                         if baseline_cal else 1.0)
        baseline_ips = committed["throughput"]["instructions_per_sec"]
        floor = baseline_ips * machine_scale * (1.0 - REGRESSION_TOLERANCE)
        print(f"machine speed vs baseline host: {machine_scale:.2f}x "
              f"(gate floor {floor:,.0f} instructions/sec)")
        assert ips >= floor, (
            f"interpreter throughput regressed: {ips:,.0f} instructions/sec "
            f"vs committed baseline {baseline_ips:,} scaled by machine speed "
            f"{machine_scale:.2f}x (floor {floor:,.0f}; set "
            f"REPRO_BENCH_UPDATE=1 to rebaseline or REPRO_BENCH_GATE=0 to "
            f"skip)")
        seed = committed.get("seed")
        if seed:
            speedup = ips / (seed["instructions_per_sec"] * machine_scale)
            assert speedup >= 5.0, (
                f"throughput only {speedup:.1f}x over the seed interpreter "
                f"(expected >= 5x)")


def main():
    test_emulator_throughput_and_fork_rate()


if __name__ == "__main__":
    main()
