"""Regenerates Figure 5: run-time overhead of ROPk vs the 2VM-IMPlast baseline."""

from repro.evaluation import render_table, run_figure5
from repro.obfuscation.configs import nvm


def test_figure5_runtime_overhead(benchmark, scale):
    benchmarks = scale["clbg_benchmarks"]
    k_values = (0.05, 0.50, 1.00) if benchmarks is not None else None
    baseline = nvm(2, "last") if benchmarks is None else nvm(1, "all")

    def run():
        return run_figure5(benchmarks=benchmarks, k_values=k_values, baseline=baseline)

    bars = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ("benchmark", "k", "vs native", "vs VM baseline"),
        [(bar.benchmark, f"{bar.k:.2f}", f"{bar.slowdown_vs_native:.2f}x",
          f"{bar.slowdown_vs_baseline:.2f}x") for bar in bars],
        title="Figure 5 (run-time overhead)"))
    # qualitative shape: overhead grows with k, and moderate k stays cheaper
    # than the double-VM baseline for most benchmarks
    by_benchmark = {}
    for bar in bars:
        by_benchmark.setdefault(bar.benchmark, []).append(bar)
    cheaper_than_baseline = 0
    for series in by_benchmark.values():
        series.sort(key=lambda bar: bar.k)
        assert series[-1].rop_instructions >= series[0].rop_instructions
        if series[0].slowdown_vs_baseline < 1.0:
            cheaper_than_baseline += 1
    assert cheaper_than_baseline >= len(by_benchmark) // 2
