"""Regenerates §VII-C1: rewriting coverage over the coreutils-like corpus."""

from repro.evaluation import render_table, run_coverage_study


def test_section7c_rewriting_coverage(benchmark, scale):
    def run():
        return run_coverage_study(programs=scale["corpus_programs"],
                                  functions_per_program=scale["corpus_functions"])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = [
        ("total functions", result.total_functions),
        ("skipped (smaller than stub)", result.skipped_small),
        ("attempted", result.attempted),
        ("rewritten", result.rewritten),
        ("coverage", f"{result.coverage:.1%}"),
    ] + [(f"failure: {k}", v) for k, v in sorted(result.failure_categories.items())]
    print(render_table(("measurement", "value"), rows, title="§VII-C1 coverage study"))
    # paper: 95.1% of attempted functions rewritten; the synthetic corpus
    # lands in the same region
    assert result.coverage > 0.85
    assert result.skipped_small > 0
    assert result.failure_categories  # at least one exotic failure category hit
