"""Shared scaling knobs for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (few functions, seconds-level attack budgets) so the whole suite runs
on a laptop.  Set ``REPRO_FULL_SCALE=1`` to use the paper-sized grids; expect
multiple CPU-hours in that mode (the paper reports >2000 CPU hours for its
own grid).
"""

import pytest

from repro import knobs

#: True when the full paper-scale experiment grid was requested.
FULL_SCALE = knobs.raw("REPRO_FULL_SCALE", "0") == "1"


@pytest.fixture(scope="session")
def scale():
    """Return the scaling parameters shared by all benchmarks."""
    if FULL_SCALE:
        return {
            "structures": None,          # all six control structures
            "input_sizes": (1, 2, 4, 8),
            "seeds": (1, 2, 3),
            "attack_seconds": 3600.0,
            "attack_executions": 100_000,
            "clbg_benchmarks": None,     # all ten
            "corpus_programs": 107,
            "corpus_functions": 13,
            "vm_configs": None,
        }
    return {
        "structures": ("if(bb4,bb4)", "for(if(bb4,bb4))"),
        "input_sizes": (1,),
        "seeds": (1,),
        "attack_seconds": 2.0,
        "attack_executions": 40,
        "clbg_benchmarks": ("fasta", "rev-comp", "sp-norm"),
        "corpus_programs": 8,
        "corpus_functions": 8,
        "vm_configs": ("NATIVE", "ROP0.05", "ROP0.50", "ROP1.00", "2VM", "2VM-IMPlast"),
    }
