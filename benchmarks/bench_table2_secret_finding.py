"""Regenerates Table II (secret-finding columns): attacks across configurations."""

from repro.attacks import AttackBudget
from repro.evaluation import TABLE2_CONFIGURATIONS, render_table, run_table2
from repro.workloads.randomfuns import generate_table2_suite


def _configurations(scale):
    if scale["vm_configs"] is None:
        return TABLE2_CONFIGURATIONS
    return tuple(c for c in TABLE2_CONFIGURATIONS if c.name in scale["vm_configs"])


def test_table2_secret_finding(benchmark, scale):
    specs = generate_table2_suite(point_test=True, seeds=scale["seeds"],
                                  input_sizes=scale["input_sizes"],
                                  structures=scale["structures"])
    budget = AttackBudget(seconds=scale["attack_seconds"],
                          max_executions=scale["attack_executions"])

    def run():
        return run_table2(configurations=_configurations(scale), specs=specs,
                          budget=budget, include_coverage=False)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ("configuration", "secrets found", "avg time", "coverage"),
        [row.as_cells() for row in rows],
        title="Table II (secret finding, scaled)"))
    native = next(row for row in rows if row.configuration == "NATIVE")
    hardened = [row for row in rows if row.configuration.startswith("ROP")]
    # the qualitative shape of Table II: ROPk defeats more attacks than native
    assert native.secrets_found >= max(row.secrets_found for row in hardened)
